//! Naive Monte-Carlo estimation by direct possible-world sampling.
//!
//! Sampling worlds uniformly from the product distribution and reporting the
//! fraction that satisfy the DNF gives an *additive* (ε, δ)-approximation via
//! the Hoeffding bound with `N = ⌈ln(2/δ) / (2ε²)⌉` samples. It is included
//! as a second baseline: for the small result probabilities created by
//! multi-join queries it is useless (the relative error blows up), which is
//! exactly why probabilistic database systems use the Karp-Luby estimator
//! instead.

use std::time::{Duration, Instant};

use events::{Dnf, ProbabilitySpace, Valuation, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dklr::McResult;

/// Options for the naive sampler.
#[derive(Debug, Clone)]
pub struct NaiveOptions {
    /// Additive error ε.
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Explicit sample count override (`None` = use the Hoeffding count).
    pub samples: Option<u64>,
    /// Wall-clock timeout.
    pub timeout: Option<Duration>,
    /// RNG seed.
    pub seed: Option<u64>,
}

impl NaiveOptions {
    /// Additive (ε, δ) options with δ = 0.0001.
    pub fn new(epsilon: f64) -> Self {
        NaiveOptions { epsilon, delta: 1e-4, samples: None, timeout: None, seed: None }
    }

    /// Sets a deterministic seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides the sample count.
    pub fn with_samples(mut self, samples: u64) -> Self {
        self.samples = Some(samples);
        self
    }

    /// Sets the failure probability.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Number of samples mandated by the Hoeffding bound for the configured
    /// (ε, δ).
    pub fn hoeffding_samples(&self) -> u64 {
        let eps = self.epsilon.clamp(1e-9, 1.0);
        let delta = self.delta.clamp(1e-12, 0.5);
        ((2.0f64 / delta).ln() / (2.0 * eps * eps)).ceil() as u64
    }
}

/// Estimates the probability of `dnf` by sampling complete possible worlds.
pub fn naive_monte_carlo(dnf: &Dnf, space: &ProbabilitySpace, opts: &NaiveOptions) -> McResult {
    naive_monte_carlo_ref(events::DnfRef::Owned(dnf), space, opts)
}

/// [`naive_monte_carlo`] on either lineage representation — for
/// [`events::DnfRef::Arena`] the sampler evaluates clause satisfaction
/// against the arena view directly, without materialising an owned DNF.
/// Seeded runs are bit-identical across representations of the same formula.
pub fn naive_monte_carlo_ref(
    dnf: events::DnfRef<'_>,
    space: &ProbabilitySpace,
    opts: &NaiveOptions,
) -> McResult {
    let start = Instant::now();
    if dnf.is_empty() {
        return McResult { estimate: 0.0, samples: 0, converged: true, elapsed: start.elapsed() };
    }
    if dnf.is_tautology() {
        return McResult { estimate: 1.0, samples: 0, converged: true, elapsed: start.elapsed() };
    }
    let mut rng = match opts.seed {
        Some(seed) => StdRng::seed_from_u64(seed),
        None => StdRng::from_entropy(),
    };
    let vars: Vec<VarId> = dnf.vars().into_iter().collect();
    let target = opts.samples.unwrap_or_else(|| opts.hoeffding_samples());
    let mut hits = 0u64;
    let mut taken = 0u64;
    while taken < target {
        if let Some(t) = opts.timeout {
            if taken.is_multiple_of(1024) && start.elapsed() >= t {
                break;
            }
        }
        let mut world = Valuation::new();
        for &v in &vars {
            world.assign(v, sample_value(space, v, &mut rng));
        }
        // Mirrors `Valuation::satisfies` on the clause iterators of either
        // representation.
        let satisfied = (0..dnf.clause_count())
            .any(|i| dnf.clause_atoms(i).all(|a| world.value(a.var) == Some(a.value)));
        if satisfied {
            hits += 1;
        }
        taken += 1;
    }
    let estimate = if taken == 0 { 0.0 } else { hits as f64 / taken as f64 };
    McResult { estimate, samples: taken, converged: taken >= target, elapsed: start.elapsed() }
}

fn sample_value<R: Rng + ?Sized>(space: &ProbabilitySpace, var: VarId, rng: &mut R) -> u32 {
    let domain = space.domain_size(var);
    let mut target = rng.gen_range(0.0..1.0);
    for value in 0..domain {
        let p = space.prob(var, value);
        if target < p {
            return value;
        }
        target -= p;
    }
    domain - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::Clause;

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    #[test]
    fn hoeffding_sample_count() {
        let opts = NaiveOptions::new(0.05).with_delta(0.01);
        // ln(200)/(2*0.0025) ≈ 1059.66…
        assert_eq!(opts.hoeffding_samples(), 1060);
    }

    #[test]
    fn converges_on_moderate_probabilities() {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[3]]),
        ]);
        let exact = phi.exact_probability_enumeration(&s);
        let r = naive_monte_carlo(&phi, &s, &NaiveOptions::new(0.02).with_delta(0.01).with_seed(4));
        assert!(r.converged);
        assert!((r.estimate - exact).abs() <= 0.02, "estimate {} exact {exact}", r.estimate);
    }

    #[test]
    fn trivial_formulas() {
        let (s, _) = bool_space(&[0.5]);
        assert_eq!(naive_monte_carlo(&Dnf::empty(), &s, &NaiveOptions::new(0.1)).estimate, 0.0);
        assert_eq!(naive_monte_carlo(&Dnf::tautology(), &s, &NaiveOptions::new(0.1)).estimate, 1.0);
    }

    #[test]
    fn explicit_sample_override() {
        let (s, vars) = bool_space(&[0.5, 0.5]);
        let phi = Dnf::from_clauses(vec![Clause::from_bools(&[vars[0], vars[1]])]);
        let r = naive_monte_carlo(&phi, &s, &NaiveOptions::new(0.5).with_samples(100).with_seed(1));
        assert_eq!(r.samples, 100);
        assert!(r.converged);
    }

    /// The documented weakness: for tiny probabilities the additive sampler
    /// reports 0 (or wildly wrong relative values) with realistic budgets.
    #[test]
    fn small_probabilities_defeat_naive_sampling() {
        let (s, vars) = bool_space(&[0.001, 0.001]);
        let phi = Dnf::from_clauses(vec![Clause::from_bools(&[vars[0], vars[1]])]);
        let exact = phi.exact_probability_enumeration(&s); // 1e-6
        let r =
            naive_monte_carlo(&phi, &s, &NaiveOptions::new(0.01).with_samples(1000).with_seed(2));
        // Additive error fine, relative error terrible.
        assert!((r.estimate - exact).abs() <= 0.01);
        assert!(r.estimate == 0.0 || (r.estimate - exact).abs() / exact > 10.0);
    }
}
