//! The metrics registry and its handle types.
//!
//! A [`MetricsRegistry`] owns named atomics; [`Counter`], [`Gauge`], and
//! [`Histogram`] are clonable handles onto them. Handles default to no-ops
//! (`None` inside), which is what a disabled [`crate::Obs`] hands out, so
//! instrumented code records unconditionally and pays one branch when
//! observability is off.
//!
//! Histograms are log₂-bucketed: bucket `i` counts values in
//! `[2^(i-48), 2^(i-47))`, so the 64 buckets cover `[2⁻⁴⁸, 2¹⁶)` — twelve
//! decimal orders of magnitude below one second and four above, which fits
//! both sub-microsecond slice latencies and interval widths in `[0, 1]`.
//! Values at or below zero (and NaN) land in bucket 0, values at or above
//! `2¹⁶` in bucket 63. Count, sum, min, and max are tracked exactly (the
//! floats via compare-exchange on their bit patterns).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::HISTOGRAM_BUCKETS;

/// A monotonically increasing counter handle. Default = no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for no-op handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle. Default = no-op.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for no-op handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Shared histogram state. See the [module docs](self) for the bucketing.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// `f64` bit patterns maintained by compare-exchange.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn record(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        update_f64(&self.sum_bits, |cur| cur + v);
        update_f64(&self.min_bits, |cur| cur.min(v));
        update_f64(&self.max_bits, |cur| cur.max(v));
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: (count > 0).then(|| f64::from_bits(self.min_bits.load(Ordering::Relaxed))),
            max: (count > 0).then(|| f64::from_bits(self.max_bits.load(Ordering::Relaxed))),
            buckets,
        }
    }
}

/// Lock-free `f64` read-modify-write over an `AtomicU64` of bit patterns.
fn update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// The bucket a value lands in: the IEEE-754 exponent shifted so that
/// `2⁻⁴⁸ → 0`, clamped into `0..HISTOGRAM_BUCKETS`. Non-positive values,
/// NaN, and subnormals land in bucket 0.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 || !v.is_finite() {
        return if v == f64::INFINITY { HISTOGRAM_BUCKETS - 1 } else { 0 };
    }
    let exponent = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    (exponent + 48).clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
}

/// The lower edge of bucket `i` — the smallest value it counts. Used by the
/// text report's quantile estimates.
pub fn bucket_lower_bound(i: usize) -> f64 {
    (2f64).powi(i as i32 - 48)
}

/// A log₂-bucketed histogram handle. Default = no-op.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    /// Records a duration in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Point-in-time snapshot (empty for no-op handles).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.as_ref().map(|core| core.snapshot()).unwrap_or_default()
    }
}

/// Frozen histogram state: exact count/sum/min/max plus the non-empty
/// buckets as `(bucket index, count)` pairs in index order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Smallest sample (`None` when empty).
    pub min: Option<f64>,
    /// Largest sample (`None` when empty).
    pub max: Option<f64>,
    /// Non-empty `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate: the lower edge of the bucket
    /// containing the `q`-quantile sample (`q` in `[0, 1]`). `None` when
    /// empty.
    pub fn quantile_bucket_bound(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_lower_bound(i));
            }
        }
        self.buckets.last().map(|&(i, _)| bucket_lower_bound(i))
    }
}

/// A named registry of counters, gauges, and histograms. Fetching a name
/// registers it on first use and always returns a handle onto the same
/// underlying atomic; export order is name order (deterministic).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Handle onto the counter `name` (registered on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        let cell = map.entry(name.to_owned()).or_default();
        Counter(Some(Arc::clone(cell)))
    }

    /// Handle onto the gauge `name` (registered on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        let cell = map.entry(name.to_owned()).or_default();
        Gauge(Some(Arc::clone(cell)))
    }

    /// Handle onto the histogram `name` (registered on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        let core = map.entry(name.to_owned()).or_insert_with(|| Arc::new(HistogramCore::new()));
        Histogram(Some(Arc::clone(core)))
    }

    /// Freezes every metric (events are attached by [`crate::Obs::snapshot`]).
    pub fn snapshot(&self) -> crate::Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(name, core)| (name.clone(), core.snapshot()))
            .collect();
        crate::Snapshot { counters, gauges, histograms, events: Vec::new(), dropped_events: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_range() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1e-300), 0, "far-underflow clamps to bucket 0");
        assert_eq!(bucket_index(1e300), HISTOGRAM_BUCKETS - 1, "overflow clamps to the top");
        // 1.0 = 2⁰ → bucket 48; 0.5 → 47; 2.0 → 49.
        assert_eq!(bucket_index(1.0), 48);
        assert_eq!(bucket_index(0.5), 47);
        assert_eq!(bucket_index(2.0), 49);
        // Every in-range value lands in the bucket whose edges bracket it.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(lo * 1.999), i);
        }
    }

    #[test]
    fn histogram_tracks_exact_aggregates() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        for v in [0.001, 0.002, 0.004, 1.5] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 1.507).abs() < 1e-12);
        assert_eq!(snap.min, Some(0.001));
        assert_eq!(snap.max, Some(1.5));
        assert!((snap.mean() - 1.507 / 4.0).abs() < 1e-12);
        let total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 4);
        assert!(snap.quantile_bucket_bound(0.5).unwrap() <= 0.002);
    }

    #[test]
    fn same_name_shares_state_across_fetches_and_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let c = reg.counter("shared");
                    for _ in 0..1000 {
                        c.inc();
                    }
                    reg.histogram("lat").record(0.01);
                });
            }
        });
        assert_eq!(reg.counter("shared").get(), 4000);
        assert_eq!(reg.histogram("lat").snapshot().count, 4);
    }

    #[test]
    fn empty_histogram_snapshot_is_empty() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, None);
        assert_eq!(snap.quantile_bucket_bound(0.5), None);
        assert_eq!(snap.mean(), 0.0);
    }
}
