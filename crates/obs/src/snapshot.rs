//! Frozen snapshots, the JSON-lines export format, and its strict parser.
//!
//! The export is one JSON object per line, in a fixed section order —
//! counters, gauges, histograms, then trace events — mirroring the
//! hand-rolled `BENCH_*.json` record style so the same harness tooling can
//! validate both:
//!
//! ```text
//! {"metric":"engine.items","kind":"counter","value":12}
//! {"metric":"storage.wal.bytes","kind":"gauge","value":4096}
//! {"metric":"engine.item_seconds","kind":"histogram","count":2,"sum":0.5,"min":0.1,"max":0.4,"buckets":"44:1 46:1"}
//! {"event":"dtree.slice","seq":0,"micros":118,"steps":64,"width":0.25}
//! ```
//!
//! Histogram `buckets` encode the non-empty log₂ buckets as space-separated
//! `index:count` pairs. Floats always carry a decimal point or exponent so
//! the parser can distinguish them from integers lexically. The journal's
//! drop count is exported as a synthetic `obs.trace.dropped` counter.
//! [`parse_json_lines`] is strict: unknown keys, out-of-order sections,
//! duplicate metric names, non-finite numbers, and malformed bucket strings
//! are all errors. Event field keys must not shadow the reserved `event`,
//! `seq`, and `micros` keys.

use crate::metrics::HistogramSnapshot;
use crate::trace::{FieldValue, TraceEvent};

/// Synthetic counter name carrying [`Snapshot::dropped_events`] in exports.
pub const DROPPED_EVENTS_METRIC: &str = "obs.trace.dropped";

/// A frozen view of a registry plus its trace journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` counters in export order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges in export order.
    pub gauges: Vec<(String, u64)>,
    /// `(name, state)` histograms in export order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained trace events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events dropped because the journal was full.
    pub dropped_events: u64,
}

impl Snapshot {
    /// Renders the snapshot as JSON lines (see the [module docs](self)).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        let mut counters: Vec<(&str, u64)> =
            self.counters.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        if !counters.iter().any(|&(n, _)| n == DROPPED_EVENTS_METRIC) {
            let at = counters.partition_point(|&(n, _)| n < DROPPED_EVENTS_METRIC);
            counters.insert(at, (DROPPED_EVENTS_METRIC, self.dropped_events));
        }
        for (name, value) in counters {
            out.push_str(&format!(
                "{{\"metric\":{},\"kind\":\"counter\",\"value\":{value}}}\n",
                json_string(name)
            ));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!(
                "{{\"metric\":{},\"kind\":\"gauge\",\"value\":{value}}}\n",
                json_string(name)
            ));
        }
        for (name, hist) in &self.histograms {
            out.push_str(&format!(
                "{{\"metric\":{},\"kind\":\"histogram\",\"count\":{}",
                json_string(name),
                hist.count
            ));
            out.push_str(&format!(",\"sum\":{}", json_f64(hist.sum)));
            if let (Some(min), Some(max)) = (hist.min, hist.max) {
                out.push_str(&format!(",\"min\":{},\"max\":{}", json_f64(min), json_f64(max)));
            }
            let buckets: Vec<String> =
                hist.buckets.iter().map(|&(i, n)| format!("{i}:{n}")).collect();
            out.push_str(&format!(",\"buckets\":\"{}\"}}\n", buckets.join(" ")));
        }
        for event in &self.events {
            out.push_str(&format!(
                "{{\"event\":{},\"seq\":{},\"micros\":{}",
                json_string(&event.kind),
                event.seq,
                event.micros
            ));
            for (key, value) in &event.fields {
                out.push_str(&format!(",{}:", json_string(key)));
                match value {
                    FieldValue::U64(v) => out.push_str(&v.to_string()),
                    FieldValue::F64(v) => out.push_str(&json_f64(*v)),
                    FieldValue::Str(s) => out.push_str(&json_string(s)),
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders a human-readable text report (the `pdb-stats` output).
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let name_width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .chain([DROPPED_EVENTS_METRIC.len()])
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() || self.dropped_events > 0 {
            out.push_str("counters\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<name_width$}  {value}\n"));
            }
            if !self.counters.iter().any(|(n, _)| n == DROPPED_EVENTS_METRIC) {
                out.push_str(&format!(
                    "  {DROPPED_EVENTS_METRIC:<name_width$}  {}\n",
                    self.dropped_events
                ));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<name_width$}  {value}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            for (name, hist) in &self.histograms {
                if hist.count == 0 {
                    out.push_str(&format!("  {name:<name_width$}  count=0\n"));
                    continue;
                }
                out.push_str(&format!(
                    "  {name:<name_width$}  count={} mean={:.3e} p50~{:.3e} min={:.3e} max={:.3e}\n",
                    hist.count,
                    hist.mean(),
                    hist.quantile_bucket_bound(0.5).unwrap_or(0.0),
                    hist.min.unwrap_or(0.0),
                    hist.max.unwrap_or(0.0),
                ));
            }
        }
        if !self.events.is_empty() || self.dropped_events > 0 {
            const TAIL: usize = 20;
            let skipped = self.events.len().saturating_sub(TAIL);
            out.push_str(&format!(
                "trace ({} events retained, {} dropped)\n",
                self.events.len(),
                self.dropped_events
            ));
            if skipped > 0 {
                out.push_str(&format!("  ... {skipped} earlier events omitted\n"));
            }
            for event in self.events.iter().skip(skipped) {
                out.push_str(&format!(
                    "  [{:>6} +{:>9}us] {}",
                    event.seq, event.micros, event.kind
                ));
                for (key, value) in &event.fields {
                    match value {
                        FieldValue::U64(v) => out.push_str(&format!(" {key}={v}")),
                        FieldValue::F64(v) => out.push_str(&format!(" {key}={v:.4}")),
                        FieldValue::Str(s) => out.push_str(&format!(" {key}={s}")),
                    }
                }
                out.push('\n');
            }
        }
        out
    }
}

/// One parsed export line.
#[derive(Debug, Clone, PartialEq)]
pub enum Line {
    /// A `"kind":"counter"` metric line.
    Counter {
        /// Metric name.
        name: String,
        /// Counter value.
        value: u64,
    },
    /// A `"kind":"gauge"` metric line.
    Gauge {
        /// Metric name.
        name: String,
        /// Gauge value.
        value: u64,
    },
    /// A `"kind":"histogram"` metric line.
    Histogram {
        /// Metric name.
        name: String,
        /// Parsed histogram state.
        hist: HistogramSnapshot,
    },
    /// A trace-event line.
    Event(TraceEvent),
}

/// Parses one export line strictly (exact key order, no unknown keys, no
/// trailing garbage).
pub fn parse_line(line: &str) -> Result<Line, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let first = p.parse_key()?;
    let line = match first.as_str() {
        "metric" => {
            let name = p.parse_string()?;
            if p.parse_key()? != "kind" {
                return Err("expected \"kind\" after \"metric\"".into());
            }
            let kind = p.parse_string()?;
            match kind.as_str() {
                "counter" => {
                    if p.parse_key()? != "value" {
                        return Err("expected \"value\" on counter line".into());
                    }
                    Line::Counter { name, value: p.parse_u64()? }
                }
                "gauge" => {
                    if p.parse_key()? != "value" {
                        return Err("expected \"value\" on gauge line".into());
                    }
                    Line::Gauge { name, value: p.parse_u64()? }
                }
                "histogram" => Line::Histogram { name, hist: parse_histogram_body(&mut p)? },
                other => return Err(format!("unknown metric kind {other:?}")),
            }
        }
        "event" => {
            let kind = p.parse_string()?;
            if p.parse_key()? != "seq" {
                return Err("expected \"seq\" after \"event\"".into());
            }
            let seq = p.parse_u64()?;
            if p.parse_key()? != "micros" {
                return Err("expected \"micros\" after \"seq\"".into());
            }
            let micros = p.parse_u64()?;
            let mut fields = Vec::new();
            while !p.at_close() {
                let key = p.parse_key()?;
                if key == "event" || key == "seq" || key == "micros" {
                    return Err(format!("reserved key {key:?} reused as event field"));
                }
                fields.push((key, p.parse_scalar()?));
            }
            Line::Event(TraceEvent { seq, micros, kind, fields })
        }
        other => {
            return Err(format!("line must start with \"metric\" or \"event\", got {other:?}"))
        }
    };
    p.expect(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing garbage after object".into());
    }
    Ok(line)
}

fn parse_histogram_body(p: &mut Parser<'_>) -> Result<HistogramSnapshot, String> {
    if p.parse_key()? != "count" {
        return Err("expected \"count\" on histogram line".into());
    }
    let count = p.parse_u64()?;
    if p.parse_key()? != "sum" {
        return Err("expected \"sum\" after \"count\"".into());
    }
    let sum = p.parse_f64()?;
    let (mut min, mut max) = (None, None);
    let mut key = p.parse_key()?;
    if key == "min" {
        min = Some(p.parse_f64()?);
        if p.parse_key()? != "max" {
            return Err("expected \"max\" after \"min\"".into());
        }
        max = Some(p.parse_f64()?);
        key = p.parse_key()?;
    }
    if key != "buckets" {
        return Err("expected \"buckets\" on histogram line".into());
    }
    let spec = p.parse_string()?;
    let mut buckets = Vec::new();
    let mut total = 0u64;
    for pair in spec.split(' ').filter(|s| !s.is_empty()) {
        let (index, n) = pair
            .split_once(':')
            .ok_or_else(|| format!("bucket entry {pair:?} is not index:count"))?;
        let index: usize = index.parse().map_err(|_| format!("bad bucket index {index:?}"))?;
        let n: u64 = n.parse().map_err(|_| format!("bad bucket count {n:?}"))?;
        if index >= crate::HISTOGRAM_BUCKETS {
            return Err(format!("bucket index {index} out of range"));
        }
        if n == 0 {
            return Err(format!("bucket {index} has zero count"));
        }
        if buckets.last().is_some_and(|&(prev, _)| prev >= index) {
            return Err("bucket indices must be strictly increasing".into());
        }
        buckets.push((index, n));
        total += n;
    }
    if total != count {
        return Err(format!("bucket counts sum to {total} but count is {count}"));
    }
    if (count > 0) != min.is_some() {
        return Err("min/max must be present exactly when count > 0".into());
    }
    if let (Some(min), Some(max)) = (min, max) {
        if min > max {
            return Err(format!("histogram min {min} exceeds max {max}"));
        }
    }
    Ok(HistogramSnapshot { count, sum, min, max, buckets })
}

/// Parses a full export back into a [`Snapshot`], enforcing the section
/// order (counters, gauges, histograms, events), unique metric names, and
/// strictly increasing event sequence numbers. The synthetic
/// [`DROPPED_EVENTS_METRIC`] counter is folded back into
/// [`Snapshot::dropped_events`].
pub fn parse_json_lines(text: &str) -> Result<Snapshot, String> {
    let mut snap = Snapshot::default();
    let mut section = 0u8; // 0 counters, 1 gauges, 2 histograms, 3 events
    let mut seen_dropped = false;
    let mut names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let enforce = |section: &mut u8, at: u8, what: &str| -> Result<(), String> {
            if *section > at {
                return Err(format!("line {}: {what} line out of section order", lineno + 1));
            }
            *section = at;
            Ok(())
        };
        match parsed {
            Line::Counter { name, value } => {
                enforce(&mut section, 0, "counter")?;
                if !names.insert(name.clone()) {
                    return Err(format!("line {}: duplicate metric {name:?}", lineno + 1));
                }
                if name == DROPPED_EVENTS_METRIC {
                    snap.dropped_events = value;
                    seen_dropped = true;
                } else {
                    snap.counters.push((name, value));
                }
            }
            Line::Gauge { name, value } => {
                enforce(&mut section, 1, "gauge")?;
                if !names.insert(name.clone()) {
                    return Err(format!("line {}: duplicate metric {name:?}", lineno + 1));
                }
                snap.gauges.push((name, value));
            }
            Line::Histogram { name, hist } => {
                enforce(&mut section, 2, "histogram")?;
                if !names.insert(name.clone()) {
                    return Err(format!("line {}: duplicate metric {name:?}", lineno + 1));
                }
                snap.histograms.push((name, hist));
            }
            Line::Event(event) => {
                enforce(&mut section, 3, "event")?;
                if snap.events.last().is_some_and(|prev| prev.seq >= event.seq) {
                    return Err(format!(
                        "line {}: event seq {} does not increase",
                        lineno + 1,
                        event.seq
                    ));
                }
                snap.events.push(event);
            }
        }
    }
    if !seen_dropped {
        return Err(format!("export is missing the {DROPPED_EVENTS_METRIC:?} counter"));
    }
    Ok(snap)
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float so it lexes as a float: always with a decimal point or
/// exponent, round-tripping exactly through the shortest representation.
pub fn json_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) || !v.is_finite() {
        s
    } else {
        format!("{s}.0")
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    /// `true` when the next non-space byte closes the object.
    fn at_close(&mut self) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&b'}')
    }

    /// Consumes `,`-or-nothing, then a key string, then `:`. The leading
    /// comma is required except for the first key after `{`.
    fn parse_key(&mut self) -> Result<String, String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b',') {
            self.pos += 1;
        }
        let key = self.parse_string()?;
        self.expect(b':')?;
        Ok(key)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xd800..0xdc00).contains(&code) {
                                // High surrogate: require a following \u low half.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err("invalid low surrogate".into());
                                }
                                let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                out.push(char::from_u32(c).ok_or("invalid surrogate pair")?);
                            } else if (0xdc00..0xe000).contains(&code) {
                                return Err("lone low surrogate".into());
                            } else {
                                out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            }
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                b if b < 0x20 => return Err("raw control character in string".into()),
                b => {
                    // Re-assemble UTF-8 multi-byte sequences from the source.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let chunk =
                        self.bytes.get(start..start + len).ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let chunk = self.bytes.get(self.pos..self.pos + 4).ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(chunk).map_err(|_| "invalid \\u escape")?;
        let code = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(code)
    }

    /// The raw text of the next number token.
    fn number_token(&mut self) -> Result<&str, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number".into())
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        let token = self.number_token()?;
        token.parse().map_err(|_| format!("{token:?} is not an unsigned integer"))
    }

    fn parse_f64(&mut self) -> Result<f64, String> {
        let token = self.number_token()?;
        let v: f64 = token.parse().map_err(|_| format!("{token:?} is not a number"))?;
        if !v.is_finite() {
            return Err(format!("{token:?} is not finite"));
        }
        Ok(v)
    }

    /// An event field value: string, or number (float iff it lexes as one).
    fn parse_scalar(&mut self) -> Result<FieldValue, String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'"') {
            return Ok(FieldValue::Str(self.parse_string()?));
        }
        let token = self.number_token()?;
        if token.contains(['.', 'e', 'E', '-']) {
            let v: f64 = token.parse().map_err(|_| format!("{token:?} is not a number"))?;
            if !v.is_finite() {
                return Err(format!("{token:?} is not finite"));
            }
            Ok(FieldValue::F64(v))
        } else {
            Ok(FieldValue::U64(
                token.parse().map_err(|_| format!("{token:?} is not an unsigned integer"))?,
            ))
        }
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0x00..=0x7f => Ok(1),
        0xc0..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf7 => Ok(4),
        _ => Err("invalid UTF-8 lead byte".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn populated() -> Obs {
        let obs = Obs::enabled();
        obs.counter("a.count").add(3);
        obs.counter("z.count").inc();
        obs.gauge("b.gauge").set(42);
        obs.histogram("c.hist").record(0.125);
        obs.histogram("c.hist").record(3.0);
        obs.event("x.start").u64("n", 7).emit();
        obs.event("x.step").f64("w", 0.25).str("m", "kl").emit();
        obs
    }

    #[test]
    fn export_round_trips_exactly() {
        let obs = populated();
        let text = obs.export_json_lines();
        let parsed = parse_json_lines(&text).expect("parse back");
        assert_eq!(parsed.to_json_lines(), text);
        let original = obs.snapshot().unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn export_includes_the_dropped_counter() {
        let obs = Obs::with_trace_capacity(1);
        obs.event("e").emit();
        obs.event("e").emit();
        let text = obs.export_json_lines();
        assert!(text.contains("\"obs.trace.dropped\",\"kind\":\"counter\",\"value\":1"));
        let parsed = parse_json_lines(&text).unwrap();
        assert_eq!(parsed.dropped_events, 1);
        assert!(parsed.counters.is_empty(), "synthetic counter folded back out");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for (line, why) in [
            ("{\"metric\":\"a\",\"kind\":\"counter\",\"value\":-1}", "negative counter"),
            ("{\"metric\":\"a\",\"kind\":\"counter\",\"value\":1} x", "trailing garbage"),
            ("{\"metric\":\"a\",\"kind\":\"bogus\",\"value\":1}", "unknown kind"),
            ("{\"metric\":\"a\",\"kind\":\"counter\",\"extra\":1}", "unknown key"),
            ("{\"other\":\"a\"}", "unknown object"),
            (
                "{\"metric\":\"h\",\"kind\":\"histogram\",\"count\":2,\"sum\":1.0,\
                 \"min\":0.1,\"max\":0.9,\"buckets\":\"3:1\"}",
                "bucket sum mismatch",
            ),
            (
                "{\"metric\":\"h\",\"kind\":\"histogram\",\"count\":1,\"sum\":1.0,\
                 \"min\":0.1,\"max\":0.9,\"buckets\":\"99:1\"}",
                "bucket index out of range",
            ),
            (
                "{\"metric\":\"h\",\"kind\":\"histogram\",\"count\":1,\"sum\":1.0,\
                 \"buckets\":\"4:1\"}",
                "count > 0 without min/max",
            ),
            ("{\"event\":\"e\",\"seq\":0,\"micros\":1,\"seq\":2}", "reserved field key"),
        ] {
            assert!(parse_line(line).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn parse_json_lines_enforces_file_invariants() {
        let dropped = "{\"metric\":\"obs.trace.dropped\",\"kind\":\"counter\",\"value\":0}\n";
        let counter = "{\"metric\":\"a\",\"kind\":\"counter\",\"value\":1}\n";
        let gauge = "{\"metric\":\"g\",\"kind\":\"gauge\",\"value\":1}\n";
        let event = "{\"event\":\"e\",\"seq\":5,\"micros\":1}\n";

        let out_of_order = format!("{dropped}{gauge}{counter}");
        assert!(parse_json_lines(&out_of_order).unwrap_err().contains("section order"));

        let duplicate = format!("{dropped}{counter}{counter}");
        assert!(parse_json_lines(&duplicate).unwrap_err().contains("duplicate"));

        let seq_regress = format!("{dropped}{event}{event}");
        assert!(parse_json_lines(&seq_regress).unwrap_err().contains("seq"));

        assert!(parse_json_lines(counter).unwrap_err().contains("obs.trace.dropped"));

        let ok = format!("{dropped}{counter}{gauge}{event}");
        let snap = parse_json_lines(&ok).unwrap();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn json_f64_always_lexes_as_float() {
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(0.25), "0.25");
        for v in [3.0, 0.25, 1e-30, 123456.75, f64::MIN_POSITIVE] {
            let s = json_f64(v);
            assert!(s.contains(['.', 'e', 'E']));
            assert_eq!(s.parse::<f64>().unwrap(), v, "round-trips: {s}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["plain", "with \"quotes\"", "tab\tnewline\n", "unicode é λ 💡", "back\\slash"]
        {
            let encoded = json_string(s);
            let mut p = Parser { bytes: encoded.as_bytes(), pos: 0 };
            assert_eq!(p.parse_string().unwrap(), s);
        }
        // Surrogate-pair escapes decode too.
        let mut p = Parser { bytes: b"\"\\ud83d\\udca1\"", pos: 0 };
        assert_eq!(p.parse_string().unwrap(), "💡");
    }

    #[test]
    fn report_renders_every_section() {
        let obs = populated();
        let report = obs.snapshot().unwrap().render_report();
        assert!(report.contains("counters"));
        assert!(report.contains("a.count"));
        assert!(report.contains("gauges"));
        assert!(report.contains("histograms"));
        assert!(report.contains("c.hist"));
        assert!(report.contains("count=2"));
        assert!(report.contains("trace (2 events retained"));
        assert!(report.contains("x.step"));
    }
}
