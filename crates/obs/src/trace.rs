//! The bounded structured trace journal.
//!
//! A [`TraceSink`] keeps the most recent `capacity` [`TraceEvent`]s in a ring
//! buffer; when full, the oldest event is dropped and counted. Events carry a
//! monotone sequence number (so drops are detectable in an export) and a
//! timestamp in microseconds since the sink was created.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One typed field value on a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, indices, sequence numbers).
    U64(u64),
    /// A float (seconds, widths, ratios).
    F64(f64),
    /// A short string (method labels, subsystem names).
    Str(String),
}

/// One structured span event: a kind, a monotone sequence number, a
/// microsecond timestamp relative to the sink's creation, and typed fields
/// in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotone per-sink sequence number (gaps mean the journal overflowed).
    pub seq: u64,
    /// Microseconds since the sink was created.
    pub micros: u64,
    /// Event kind, e.g. `"dtree.slice"` or `"cluster.steal"`.
    pub kind: String,
    /// Typed fields in the order they were added.
    pub fields: Vec<(String, FieldValue)>,
}

/// A bounded, thread-safe ring buffer of [`TraceEvent`]s (drop-oldest).
#[derive(Debug)]
pub struct TraceSink {
    capacity: usize,
    epoch: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl TraceSink {
    /// A sink keeping at most `capacity` events (a capacity of 0 keeps none
    /// and counts every event as dropped).
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink {
            capacity,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Records an event, assigning its sequence number and timestamp.
    pub fn push(&self, kind: &str, fields: Vec<(String, FieldValue)>) {
        let event = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            micros: self.epoch.elapsed().as_micros() as u64,
            kind: kind.to_owned(),
            fields,
        };
        let mut queue = self.events.lock().expect("trace sink poisoned");
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if queue.len() >= self.capacity {
            queue.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        queue.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").iter().cloned().collect()
    }

    /// How many events were dropped because the journal was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Builder for one trace event. Obtained from [`crate::Obs::event`]; on a
/// disabled handle every method is a no-op and nothing allocates.
#[derive(Debug)]
pub struct EventBuilder<'a> {
    sink: Option<&'a TraceSink>,
    kind: &'static str,
    fields: Vec<(String, FieldValue)>,
}

impl<'a> EventBuilder<'a> {
    /// A builder writing into `sink` (or nowhere, when `None`).
    pub fn new(sink: Option<&'a TraceSink>, kind: &'static str) -> EventBuilder<'a> {
        EventBuilder { sink, kind, fields: Vec::new() }
    }

    fn field(mut self, key: &str, value: FieldValue) -> Self {
        if self.sink.is_some() {
            self.fields.push((key.to_owned(), value));
        }
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.field(key, FieldValue::U64(value))
    }

    /// Adds a float field.
    pub fn f64(self, key: &str, value: f64) -> Self {
        self.field(key, FieldValue::F64(value))
    }

    /// Adds a boolean field (recorded as 0/1).
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.field(key, FieldValue::U64(u64::from(value)))
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        self.field(key, FieldValue::Str(value.to_owned()))
    }

    /// Records the event (no-op on disabled handles).
    pub fn emit(self) {
        if let Some(sink) = self.sink {
            sink.push(self.kind, self.fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_monotone_seq_and_fields() {
        let sink = TraceSink::new(8);
        EventBuilder::new(Some(&sink), "a").u64("n", 1).emit();
        EventBuilder::new(Some(&sink), "b").f64("w", 0.5).str("m", "kl").bool("ok", true).emit();
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].kind, "a");
        assert_eq!(events[1].fields[0], ("w".to_owned(), FieldValue::F64(0.5)));
        assert_eq!(events[1].fields[2], ("ok".to_owned(), FieldValue::U64(1)));
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let sink = TraceSink::new(3);
        for i in 0..5 {
            EventBuilder::new(Some(&sink), "e").u64("i", i).emit();
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "oldest two were dropped");
        assert_eq!(events[2].seq, 4);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let sink = TraceSink::new(0);
        EventBuilder::new(Some(&sink), "e").emit();
        EventBuilder::new(Some(&sink), "e").emit();
        assert!(sink.events().is_empty());
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn disabled_builder_is_inert() {
        let builder = EventBuilder::new(None, "e").u64("n", 1).str("s", "x");
        assert!(builder.fields.is_empty(), "no allocation when disabled");
        builder.emit();
    }
}
