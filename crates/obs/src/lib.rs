//! Unified observability for the d-tree confidence pipeline: a handle-based,
//! thread-safe metrics registry, a bounded structured trace journal, and a
//! JSON-lines snapshot format — hand-rolled, no external dependencies (the
//! build environment is offline).
//!
//! # The [`Obs`] facade
//!
//! Every instrumented subsystem (the d-tree resume frontier, the
//! `ConfidenceEngine`, the cluster scheduler, the `DiskStore`) holds an
//! [`Obs`] handle. The default handle is **disabled**: a `None` behind an
//! `Option<Arc<..>>`, so cloning it is a pointer copy, every recording call
//! is a branch on `None`, and — because the algorithms never *read* anything
//! back from the registry — results with observability enabled are
//! bit-identical to results with it disabled, by construction.
//!
//! ```
//! let obs = obs::Obs::enabled();
//! let items = obs.counter("engine.items");
//! let latency = obs.histogram("engine.item_seconds");
//! items.inc();
//! latency.record(0.004);
//! obs.event("engine.item").u64("index", 0).f64("seconds", 0.004).emit();
//! let snapshot = obs.snapshot().unwrap();
//! assert_eq!(snapshot.counters, vec![("engine.items".to_owned(), 1)]);
//! ```
//!
//! # Handles
//!
//! [`Counter`], [`Gauge`], and [`Histogram`] are cheap clonable handles onto
//! atomics owned by the registry. Subsystems fetch them once (by name) and
//! record lock-free afterwards; fetching through a disabled [`Obs`] yields
//! no-op handles. Histograms are log₂-bucketed (64 buckets covering
//! `[2⁻⁴⁸, 2¹⁶)`, under/overflows clamped) with exact count/sum/min/max —
//! enough for latencies in seconds and interval widths in `[0, 1]` alike.
//!
//! # Trace journal
//!
//! [`Obs::event`] records structured span events into a bounded ring buffer
//! ([`TraceSink`]); when full, the oldest events are dropped (and counted).
//! Events carry a monotone sequence number and microseconds since the sink
//! was created.
//!
//! # Export
//!
//! [`Obs::snapshot`] freezes everything into a [`Snapshot`], which renders to
//! JSON lines ([`Snapshot::to_json_lines`]) in the same hand-rolled style as
//! the `BENCH_*.json` records, parses back strictly
//! ([`snapshot::parse_json_lines`]), and renders a human-readable text
//! report ([`Snapshot::render_report`]) — the `pdb-stats` binary's output.
//!
//! # Structured warnings
//!
//! [`warn`] replaces scattered `eprintln!` diagnostics: one uniform
//! `warn[subsystem] message` line on stderr, plus a `log.warn` trace event
//! and a `log.warnings` counter in the process-global [`Obs`] (see
//! [`install_global`]) when one is installed.

#![warn(missing_docs)]

pub mod metrics;
pub mod snapshot;
pub mod trace;

use std::sync::{Arc, OnceLock};

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use snapshot::Snapshot;
pub use trace::{EventBuilder, FieldValue, TraceEvent, TraceSink};

/// Default trace-journal capacity of [`Obs::enabled`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Number of log₂ buckets in every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

#[derive(Debug)]
struct ObsInner {
    registry: MetricsRegistry,
    trace: TraceSink,
}

/// The observability facade: a metrics registry plus a trace journal, or —
/// the default — nothing at all. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A live registry + trace journal with the default journal capacity.
    pub fn enabled() -> Obs {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A live registry + trace journal keeping at most `capacity` events
    /// (oldest dropped first).
    pub fn with_trace_capacity(capacity: usize) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: MetricsRegistry::new(),
                trace: TraceSink::new(capacity),
            })),
        }
    }

    /// The no-op handle (same as `Obs::default()`): recording costs one
    /// branch, snapshots are `None`.
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// `true` when this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Fetches (registering on first use) the counter `name`. Disabled
    /// handles return a no-op counter.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::default(),
        }
    }

    /// Fetches (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Fetches (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name),
            None => Histogram::default(),
        }
    }

    /// Starts a structured trace event of the given kind (e.g.
    /// `"cluster.steal"`). Builder methods are no-ops on disabled handles;
    /// call [`EventBuilder::emit`] to record.
    pub fn event(&self, kind: &'static str) -> EventBuilder<'_> {
        EventBuilder::new(self.inner.as_deref().map(|i| &i.trace), kind)
    }

    /// Freezes the registry and the trace journal into a [`Snapshot`].
    /// `None` for disabled handles.
    pub fn snapshot(&self) -> Option<Snapshot> {
        let inner = self.inner.as_deref()?;
        let mut snap = inner.registry.snapshot();
        snap.events = inner.trace.events();
        snap.dropped_events = inner.trace.dropped();
        Some(snap)
    }

    /// The snapshot as JSON lines (empty string for disabled handles).
    pub fn export_json_lines(&self) -> String {
        self.snapshot().map(|s| s.to_json_lines()).unwrap_or_default()
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// Installs `obs` as the process-global sink used by [`warn`] (and by
/// [`global`]). The first installation wins; returns `false` (and changes
/// nothing) if a global sink was already installed.
pub fn install_global(obs: Obs) -> bool {
    GLOBAL.set(obs).is_ok()
}

/// The process-global [`Obs`] installed by [`install_global`], or a disabled
/// handle when none was installed.
pub fn global() -> Obs {
    GLOBAL.get().cloned().unwrap_or_default()
}

/// Structured warning: always prints one `warn[subsystem] message` line to
/// stderr (diagnostics must stay visible without any setup), and — when a
/// global [`Obs`] is installed — additionally bumps the `log.warnings`
/// counter and records a `log.warn` trace event carrying both fields, so
/// harness runs can export and count their warnings.
pub fn warn(subsystem: &str, message: &str) {
    let obs = global();
    obs.counter("log.warnings").inc();
    obs.event("log.warn").str("subsystem", subsystem).str("message", message).emit();
    eprintln!("warn[{subsystem}] {message}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let c = obs.counter("x");
        c.add(7);
        assert_eq!(c.get(), 0);
        obs.gauge("g").set(3);
        obs.histogram("h").record(1.0);
        obs.event("e").u64("k", 1).emit();
        assert!(obs.snapshot().is_none());
        assert!(obs.export_json_lines().is_empty());
    }

    #[test]
    fn enabled_handle_records_and_snapshots() {
        let obs = Obs::enabled();
        obs.counter("a.count").add(3);
        obs.counter("a.count").inc();
        obs.gauge("a.gauge").set(17);
        obs.histogram("a.hist").record(0.25);
        obs.event("a.ev").u64("n", 2).f64("w", 0.5).str("s", "x").emit();
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counters, vec![("a.count".to_owned(), 4)]);
        assert_eq!(snap.gauges, vec![("a.gauge".to_owned(), 17)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, "a.ev");
    }

    #[test]
    fn clones_share_the_same_registry() {
        let obs = Obs::enabled();
        let other = obs.clone();
        other.counter("shared").inc();
        obs.counter("shared").inc();
        assert_eq!(obs.counter("shared").get(), 2);
    }

    #[test]
    fn global_defaults_to_disabled() {
        // `install_global` is process-wide, so this test only asserts the
        // fallback shape — other tests may have installed one already.
        let g = global();
        let _ = g.is_enabled();
        warn("test", "structured warning smoke");
    }
}
