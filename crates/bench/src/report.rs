//! Plain-text and machine-readable reporting of experiment results.
//!
//! Each measurement is an [`ExperimentRow`]; [`print_table`] renders a set of
//! rows as an aligned table similar in layout to the series the paper plots,
//! so runs of the `repro_*` binaries can be compared side by side with the
//! figures and with `EXPERIMENTS.md`.
//!
//! For tracking the performance trajectory across commits, the same rows can
//! be folded into [`BenchRecord`]s — `(name, p50 seconds, converged
//! fraction)` triples — and written as JSON lines ([`append_json`] /
//! [`write_json`], the `BENCH_*.json` files). The `repro_*` binaries emit
//! them under the `--json <path>` flag; the `cluster_scaling` criterion
//! bench writes `BENCH_cluster.json` directly. JSON is hand-rolled (the
//! build environment is offline; no serde), with full string escaping.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One measurement: a (figure, workload, query, method) combination together
/// with the measured wall-clock time and the probability estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRow {
    /// Figure identifier ("6a", "6b", "6c", "7", "8", "9").
    pub figure: String,
    /// Workload description (e.g. "tpch sf=0.05", "clique n=20 p=0.3",
    /// "karate").
    pub workload: String,
    /// Query name (e.g. "B9", "t", "p2").
    pub query: String,
    /// Method label (e.g. "aconf(0.01)", "d-tree(rel 0.01)", "SPROUT").
    pub method: String,
    /// Wall-clock seconds spent in the confidence computation (summed over
    /// answer tuples for multi-answer queries).
    pub seconds: f64,
    /// Probability estimate (mean over answers for multi-answer queries).
    pub estimate: f64,
    /// Lower probability bound (d-tree methods; equals the estimate
    /// otherwise).
    pub lower: f64,
    /// Upper probability bound (d-tree methods; equals the estimate
    /// otherwise).
    pub upper: f64,
    /// Whether the requested error guarantee was achieved within the budget.
    pub converged: bool,
    /// Number of clauses in the lineage DNF(s).
    pub clauses: usize,
    /// Number of distinct variables in the lineage DNF(s).
    pub variables: usize,
}

impl ExperimentRow {
    /// Formats the row's timing like the paper's plots: seconds, or
    /// "timeout" when the method did not reach its guarantee in time.
    pub fn time_display(&self) -> String {
        if self.converged {
            format!("{:.4}", self.seconds)
        } else {
            format!("timeout({:.1}s)", self.seconds)
        }
    }
}

/// Renders rows as an aligned plain-text table.
pub fn format_table(title: &str, rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let header = [
        "figure", "workload", "query", "method", "time(s)", "estimate", "lower", "upper",
        "clauses", "vars",
    ];
    let mut table: Vec<Vec<String>> = vec![header.iter().map(|s| s.to_string()).collect()];
    for r in rows {
        table.push(vec![
            r.figure.clone(),
            r.workload.clone(),
            r.query.clone(),
            r.method.clone(),
            r.time_display(),
            format!("{:.6}", r.estimate),
            format!("{:.6}", r.lower),
            format!("{:.6}", r.upper),
            r.clauses.to_string(),
            r.variables.to_string(),
        ]);
    }
    let widths: Vec<usize> = (0..header.len())
        .map(|c| table.iter().map(|row| row[c].len()).max().unwrap_or(0))
        .collect();
    for (i, row) in table.iter().enumerate() {
        let line: Vec<String> =
            row.iter().zip(&widths).map(|(cell, w)| format!("{cell:<w$}")).collect();
        let _ = writeln!(out, "{}", line.join("  "));
        if i == 0 {
            let _ =
                writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        }
    }
    out
}

/// Prints rows as an aligned plain-text table to stdout.
pub fn print_table(title: &str, rows: &[ExperimentRow]) {
    print!("{}", format_table(title, rows));
}

/// One machine-readable benchmark record: a named series with its median
/// time and the fraction of runs that met their guarantee. This is the row
/// format of the `BENCH_*.json` perf-trajectory files.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Series name, e.g. `fig7/B9/d-tree(rel 0.01)` or
    /// `cluster/tight-deadline/hardest-first`.
    pub name: String,
    /// Median wall-clock seconds over the record's samples.
    pub p50_seconds: f64,
    /// Fraction of samples that converged within their budget, in `[0, 1]`.
    pub converged_fraction: f64,
    /// Number of samples folded into this record.
    pub samples: usize,
    /// Mean `upper − lower` interval width across the record's samples, for
    /// series where tightness (not just time) is the tracked quantity — the
    /// `resume_refinement` bench's resume-vs-rerun comparison. `None` for
    /// time-only series; omitted from the JSON when absent.
    pub mean_interval_width: Option<f64>,
    /// Appended tuples absorbed per second of maintenance wall-clock, for
    /// the `streaming` bench's ingestion series. `None` for non-streaming
    /// series; omitted from the JSON when absent.
    pub tuples_per_second: Option<f64>,
    /// Median per-changed-item refresh latency in seconds (round wall-clock
    /// divided by the items brought up to date that round), for the
    /// `streaming` bench. `None` for non-streaming series; omitted from the
    /// JSON when absent.
    pub p50_refresh_seconds: Option<f64>,
    /// Peak resident-set size in bytes over the measured run, for series
    /// whose point is bounded memory — the `storage` bench's out-of-core
    /// ingestion/scan series. `None` for series that do not track memory;
    /// omitted from the JSON when absent.
    pub rss_peak_bytes: Option<u64>,
    /// Fraction of items that came back **degraded** (failed closed to the
    /// vacuous `[0, 1]` interval after a fault), in `[0, 1]`, for the
    /// `chaos` bench's fault-injection series. `None` for fault-free
    /// series; omitted from the JSON when absent.
    pub degraded_fraction: Option<f64>,
}

impl BenchRecord {
    /// Builds a record from raw samples of `(seconds, converged)` pairs.
    /// Returns `None` for an empty sample set (an empty record would report
    /// a fake p50 of 0).
    pub fn from_samples(name: impl Into<String>, samples: &[(f64, bool)]) -> Option<BenchRecord> {
        if samples.is_empty() {
            return None;
        }
        let mut seconds: Vec<f64> = samples.iter().map(|&(s, _)| s).collect();
        seconds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let p50 = seconds[seconds.len() / 2];
        let converged = samples.iter().filter(|&&(_, c)| c).count();
        Some(BenchRecord {
            name: name.into(),
            p50_seconds: p50,
            converged_fraction: converged as f64 / samples.len() as f64,
            samples: samples.len(),
            mean_interval_width: None,
            tuples_per_second: None,
            p50_refresh_seconds: None,
            rss_peak_bytes: None,
            degraded_fraction: None,
        })
    }

    /// Attaches a mean interval width to the record (builder style).
    pub fn with_mean_interval_width(mut self, width: f64) -> BenchRecord {
        self.mean_interval_width = Some(width);
        self
    }

    /// Attaches an ingestion throughput to the record (builder style).
    pub fn with_tuples_per_second(mut self, tps: f64) -> BenchRecord {
        self.tuples_per_second = Some(tps);
        self
    }

    /// Attaches a median refresh latency to the record (builder style).
    pub fn with_refresh_latency(mut self, seconds: f64) -> BenchRecord {
        self.p50_refresh_seconds = Some(seconds);
        self
    }

    /// Attaches a peak resident-set size to the record (builder style).
    pub fn with_rss_peak_bytes(mut self, bytes: u64) -> BenchRecord {
        self.rss_peak_bytes = Some(bytes);
        self
    }

    /// Attaches a degraded-item fraction to the record (builder style).
    pub fn with_degraded_fraction(mut self, fraction: f64) -> BenchRecord {
        self.degraded_fraction = Some(fraction);
        self
    }

    /// The record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"name\":{},\"p50_seconds\":{},\"converged_fraction\":{},\"samples\":{}",
            json_string(&self.name),
            json_number(self.p50_seconds),
            json_number(self.converged_fraction),
            self.samples
        );
        if let Some(w) = self.mean_interval_width {
            let _ = write!(out, ",\"mean_interval_width\":{}", json_number(w));
        }
        if let Some(t) = self.tuples_per_second {
            let _ = write!(out, ",\"tuples_per_second\":{}", json_number(t));
        }
        if let Some(r) = self.p50_refresh_seconds {
            let _ = write!(out, ",\"p50_refresh_seconds\":{}", json_number(r));
        }
        if let Some(b) = self.rss_peak_bytes {
            let _ = write!(out, ",\"rss_peak_bytes\":{b}");
        }
        if let Some(d) = self.degraded_fraction {
            let _ = write!(out, ",\"degraded_fraction\":{}", json_number(d));
        }
        out.push('}');
        out
    }
}

/// Parses one JSON line back into a [`BenchRecord`], strictly: every key of
/// the schema must appear exactly once (`mean_interval_width`,
/// `tuples_per_second`, `p50_refresh_seconds`, `rss_peak_bytes`, and
/// `degraded_fraction` are
/// optional), unknown keys, trailing garbage, and non-finite numbers are
/// errors. This is
/// the schema check behind the `validate_bench_json` CI bin, so it
/// deliberately rejects anything [`BenchRecord::to_json`] would not emit.
pub fn parse_bench_record(line: &str) -> Result<BenchRecord, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    let mut name: Option<String> = None;
    let mut p50_seconds: Option<f64> = None;
    let mut converged_fraction: Option<f64> = None;
    let mut samples: Option<usize> = None;
    let mut mean_interval_width: Option<f64> = None;
    let mut tuples_per_second: Option<f64> = None;
    let mut p50_refresh_seconds: Option<f64> = None;
    let mut rss_peak_bytes: Option<u64> = None;
    let mut degraded_fraction: Option<f64> = None;

    p.expect(b'{')?;
    loop {
        let key = p.parse_string()?;
        p.expect(b':')?;
        match key.as_str() {
            "name" => set_once(&mut name, p.parse_string()?, &key)?,
            "p50_seconds" => set_once(&mut p50_seconds, p.parse_number()?, &key)?,
            "converged_fraction" => set_once(&mut converged_fraction, p.parse_number()?, &key)?,
            "samples" => {
                let n = p.parse_number()?;
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(format!("\"samples\" must be a non-negative integer, got {n}"));
                }
                set_once(&mut samples, n as usize, &key)?;
            }
            "mean_interval_width" => {
                set_once(&mut mean_interval_width, p.parse_number()?, &key)?;
            }
            "tuples_per_second" => {
                set_once(&mut tuples_per_second, p.parse_number()?, &key)?;
            }
            "p50_refresh_seconds" => {
                set_once(&mut p50_refresh_seconds, p.parse_number()?, &key)?;
            }
            "rss_peak_bytes" => {
                let n = p.parse_number()?;
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(format!(
                        "\"rss_peak_bytes\" must be a non-negative integer, got {n}"
                    ));
                }
                set_once(&mut rss_peak_bytes, n as u64, &key)?;
            }
            "degraded_fraction" => {
                set_once(&mut degraded_fraction, p.parse_number()?, &key)?;
            }
            other => return Err(format!("unknown key {other:?}")),
        }
        if !p.comma_or_close()? {
            break;
        }
    }
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage after record at byte {}", p.pos));
    }

    let missing = |k: &str| format!("missing required key {k:?}");
    let converged_fraction = converged_fraction.ok_or_else(|| missing("converged_fraction"))?;
    if !(0.0..=1.0).contains(&converged_fraction) {
        return Err(format!("\"converged_fraction\" {converged_fraction} outside [0, 1]"));
    }
    if let Some(t) = tuples_per_second {
        if t < 0.0 {
            return Err(format!("\"tuples_per_second\" {t} is negative"));
        }
    }
    if let Some(r) = p50_refresh_seconds {
        if r < 0.0 {
            return Err(format!("\"p50_refresh_seconds\" {r} is negative"));
        }
    }
    if let Some(d) = degraded_fraction {
        if !(0.0..=1.0).contains(&d) {
            return Err(format!("\"degraded_fraction\" {d} outside [0, 1]"));
        }
    }
    Ok(BenchRecord {
        name: name.ok_or_else(|| missing("name"))?,
        p50_seconds: p50_seconds.ok_or_else(|| missing("p50_seconds"))?,
        converged_fraction,
        samples: samples.ok_or_else(|| missing("samples"))?,
        mean_interval_width,
        tuples_per_second,
        p50_refresh_seconds,
        rss_peak_bytes,
        degraded_fraction,
    })
}

fn set_once<T>(slot: &mut Option<T>, value: T, key: &str) -> Result<(), String> {
    if slot.is_some() {
        return Err(format!("duplicate key {key:?}"));
    }
    *slot = Some(value);
    Ok(())
}

/// Minimal strict parser over one JSON object line; just enough for the flat
/// string/number records of the `BENCH_*.json` schema (offline build, no
/// serde).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "expected {:?} at byte {}, got {:?}",
                want as char,
                self.pos,
                got.map(|&b| b as char)
            )),
        }
    }

    /// After a value: `,` continues the object (returns `true`), `}` closes
    /// it (returns `false`).
    fn comma_or_close(&mut self) -> Result<bool, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(b'}') => {
                self.pos += 1;
                Ok(false)
            }
            got => Err(format!(
                "expected ',' or '}}' at byte {}, got {:?}",
                self.pos,
                got.map(|&b| b as char)
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        e => return Err(format!("bad escape {e:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("unescaped control byte {b:#x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 character (the line came from &str, so
                    // boundaries are valid).
                    let s =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        let n: f64 =
            text.parse().map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {text:?}"));
        }
        Ok(n)
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number (JSON has no NaN/Infinity; clamp those
/// to null-safe 0, which can only arise from degenerate inputs).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_owned()
    }
}

/// Folds experiment rows into per-series records, grouped by
/// `(figure, query, method)` — one record per plotted series, with the p50
/// taken across the sweep (workloads / scale factors) of that series.
/// Group order follows first appearance in `rows`.
pub fn records_from_rows(rows: &[ExperimentRow]) -> Vec<BenchRecord> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: std::collections::HashMap<String, Vec<(f64, bool)>> =
        std::collections::HashMap::new();
    for r in rows {
        let name = format!("fig{}/{}/{}", r.figure, r.query, r.method);
        groups
            .entry(name.clone())
            .or_insert_with(|| {
                order.push(name);
                Vec::new()
            })
            .push((r.seconds, r.converged));
    }
    order
        .into_iter()
        .filter_map(|name| {
            let samples = groups.get(&name)?;
            BenchRecord::from_samples(name, samples)
        })
        .collect()
}

/// Renders records as JSON lines (one object per line).
pub fn format_json(records: &[BenchRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = writeln!(out, "{}", r.to_json());
    }
    out
}

/// Writes records to `path` as JSON lines, replacing any existing file.
pub fn write_json(path: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    std::fs::write(path, format_json(records))
}

/// Appends records to `path` as JSON lines, creating the file if needed.
/// This is what the `repro_*` binaries use under `--json`, so one shared
/// file accumulates every figure of a `repro_all` run; delete the file to
/// start a fresh trajectory sample.
pub fn append_json(path: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(format_json(records).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(method: &str, seconds: f64, converged: bool) -> ExperimentRow {
        ExperimentRow {
            figure: "7".into(),
            workload: "tpch sf=0.05".into(),
            query: "B9".into(),
            method: method.into(),
            seconds,
            estimate: 0.42,
            lower: 0.41,
            upper: 0.43,
            converged,
            clauses: 300,
            variables: 900,
        }
    }

    #[test]
    fn table_contains_all_cells() {
        let rows = vec![row("d-tree(rel 0.01)", 0.0123, true), row("aconf(0.01)", 10.0, false)];
        let s = format_table("Figure 7", &rows);
        assert!(s.contains("Figure 7"));
        assert!(s.contains("d-tree(rel 0.01)"));
        assert!(s.contains("aconf(0.01)"));
        assert!(s.contains("0.0123"));
        assert!(s.contains("timeout(10.0s)"));
        assert!(s.contains("B9"));
        // Header plus separator plus two rows.
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn time_display_marks_timeouts() {
        assert_eq!(row("x", 1.5, true).time_display(), "1.5000");
        assert!(row("x", 1.5, false).time_display().starts_with("timeout"));
    }

    #[test]
    fn records_group_by_series_with_p50_and_converged_fraction() {
        let mut a = row("d-tree(rel 0.01)", 1.0, true);
        a.workload = "sf=0.01".into();
        let mut b = row("d-tree(rel 0.01)", 3.0, true);
        b.workload = "sf=0.05".into();
        let mut c = row("d-tree(rel 0.01)", 9.0, false);
        c.workload = "sf=0.1".into();
        let d = row("aconf(0.01)", 2.0, false);
        let records = records_from_rows(&[a, b, c, d]);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "fig7/B9/d-tree(rel 0.01)");
        assert_eq!(records[0].samples, 3);
        assert!((records[0].p50_seconds - 3.0).abs() < 1e-12, "median of 1,3,9");
        assert!((records[0].converged_fraction - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(records[1].name, "fig7/B9/aconf(0.01)");
        assert_eq!(records[1].converged_fraction, 0.0);
    }

    #[test]
    fn json_lines_are_escaped_and_parseable_shaped() {
        let r = BenchRecord {
            name: "odd \"name\"\\with\nescapes".into(),
            p50_seconds: 0.25,
            converged_fraction: 1.0,
            samples: 4,
            mean_interval_width: None,
            tuples_per_second: None,
            p50_refresh_seconds: None,
            rss_peak_bytes: None,
            degraded_fraction: None,
        };
        let line = r.to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\\\"name\\\""));
        assert!(line.contains("\\n"));
        assert!(line.contains("\"p50_seconds\":0.25"));
        assert!(!line.contains('\n'), "one record stays on one line");
        assert!(BenchRecord::from_samples("empty", &[]).is_none());
    }

    #[test]
    fn parse_bench_record_roundtrips_to_json() {
        let records = [
            BenchRecord {
                name: "odd \"name\"\\with\nescapes / π".into(),
                p50_seconds: 0.25,
                converged_fraction: 0.75,
                samples: 4,
                mean_interval_width: None,
                tuples_per_second: None,
                p50_refresh_seconds: None,
                rss_peak_bytes: None,
                degraded_fraction: None,
            },
            BenchRecord {
                name: "resume/suite/resume".into(),
                p50_seconds: 1e-4,
                converged_fraction: 0.0,
                samples: 8,
                mean_interval_width: Some(0.125),
                tuples_per_second: None,
                p50_refresh_seconds: None,
                rss_peak_bytes: None,
                degraded_fraction: None,
            },
            BenchRecord {
                name: "streaming/refresh/incremental".into(),
                p50_seconds: 2e-3,
                converged_fraction: 1.0,
                samples: 8,
                mean_interval_width: None,
                tuples_per_second: Some(12_500.0),
                p50_refresh_seconds: Some(8e-4),
                rss_peak_bytes: None,
                degraded_fraction: None,
            },
            BenchRecord {
                name: "storage/ingest/disk".into(),
                p50_seconds: 0.5,
                converged_fraction: 1.0,
                samples: 3,
                mean_interval_width: None,
                tuples_per_second: Some(90_000.0),
                p50_refresh_seconds: None,
                rss_peak_bytes: Some(48 * 1024 * 1024),
                degraded_fraction: None,
            },
            BenchRecord {
                name: "chaos/fig7-hard/faults=1%".into(),
                p50_seconds: 0.75,
                converged_fraction: 0.95,
                samples: 20,
                mean_interval_width: None,
                tuples_per_second: None,
                p50_refresh_seconds: None,
                rss_peak_bytes: None,
                degraded_fraction: Some(0.05),
            },
        ];
        for r in &records {
            let parsed = parse_bench_record(&r.to_json()).unwrap();
            assert_eq!(&parsed, r);
        }
    }

    #[test]
    fn parse_bench_record_rejects_malformed_lines() {
        let good = r#"{"name":"a","p50_seconds":1,"converged_fraction":1,"samples":2}"#;
        assert!(parse_bench_record(good).is_ok());
        for (bad, why) in [
            ("", "empty line"),
            ("{}", "empty object"),
            ("not json", "not an object"),
            (r#"{"name":"a","p50_seconds":1,"converged_fraction":1}"#, "missing samples"),
            (
                r#"{"name":"a","p50_seconds":1,"converged_fraction":1,"samples":2,"extra":3}"#,
                "unknown key",
            ),
            (
                r#"{"name":"a","name":"b","p50_seconds":1,"converged_fraction":1,"samples":2}"#,
                "duplicate key",
            ),
            (
                r#"{"name":"a","p50_seconds":1,"converged_fraction":2,"samples":2}"#,
                "converged_fraction outside [0, 1]",
            ),
            (
                r#"{"name":"a","p50_seconds":1,"converged_fraction":1,"samples":2.5}"#,
                "fractional samples",
            ),
            (
                r#"{"name":"a","p50_seconds":1,"converged_fraction":1,"samples":2} trailing"#,
                "trailing garbage",
            ),
            (r#"{"name":"a,"p50_seconds":1,"converged_fraction":1,"samples":2}"#, "broken string"),
            (
                r#"{"name":"a","p50_seconds":1,"converged_fraction":1,"samples":2,"tuples_per_second":-3}"#,
                "negative tuples_per_second",
            ),
            (
                r#"{"name":"a","p50_seconds":1,"converged_fraction":1,"samples":2,"p50_refresh_seconds":-1}"#,
                "negative p50_refresh_seconds",
            ),
            (
                r#"{"name":"a","p50_seconds":1,"converged_fraction":1,"samples":2,"rss_peak_bytes":-8}"#,
                "negative rss_peak_bytes",
            ),
            (
                r#"{"name":"a","p50_seconds":1,"converged_fraction":1,"samples":2,"rss_peak_bytes":1.5}"#,
                "fractional rss_peak_bytes",
            ),
            (
                r#"{"name":"a","p50_seconds":1,"converged_fraction":1,"samples":2,"degraded_fraction":1.5}"#,
                "degraded_fraction outside [0, 1]",
            ),
            (
                r#"{"name":"a","p50_seconds":1,"converged_fraction":1,"samples":2,"degraded_fraction":-0.1}"#,
                "negative degraded_fraction",
            ),
        ] {
            assert!(parse_bench_record(bad).is_err(), "accepted {why}: {bad}");
        }
    }

    #[test]
    fn write_and_append_json_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let records = records_from_rows(&[row("d-tree(0)", 1.0, true)]);
        write_json(&path, &records).unwrap();
        append_json(&path, &records).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2, "append adds a second line");
        for line in content.lines() {
            assert!(line.contains("\"name\":\"fig7/B9/d-tree(0)\""));
            assert!(line.contains("\"converged_fraction\":1"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
