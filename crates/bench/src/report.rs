//! Plain-text reporting of experiment results.
//!
//! Each measurement is an [`ExperimentRow`]; [`print_table`] renders a set of
//! rows as an aligned table similar in layout to the series the paper plots,
//! so runs of the `repro_*` binaries can be compared side by side with the
//! figures and with `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// One measurement: a (figure, workload, query, method) combination together
/// with the measured wall-clock time and the probability estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRow {
    /// Figure identifier ("6a", "6b", "6c", "7", "8", "9").
    pub figure: String,
    /// Workload description (e.g. "tpch sf=0.05", "clique n=20 p=0.3",
    /// "karate").
    pub workload: String,
    /// Query name (e.g. "B9", "t", "p2").
    pub query: String,
    /// Method label (e.g. "aconf(0.01)", "d-tree(rel 0.01)", "SPROUT").
    pub method: String,
    /// Wall-clock seconds spent in the confidence computation (summed over
    /// answer tuples for multi-answer queries).
    pub seconds: f64,
    /// Probability estimate (mean over answers for multi-answer queries).
    pub estimate: f64,
    /// Lower probability bound (d-tree methods; equals the estimate
    /// otherwise).
    pub lower: f64,
    /// Upper probability bound (d-tree methods; equals the estimate
    /// otherwise).
    pub upper: f64,
    /// Whether the requested error guarantee was achieved within the budget.
    pub converged: bool,
    /// Number of clauses in the lineage DNF(s).
    pub clauses: usize,
    /// Number of distinct variables in the lineage DNF(s).
    pub variables: usize,
}

impl ExperimentRow {
    /// Formats the row's timing like the paper's plots: seconds, or
    /// "timeout" when the method did not reach its guarantee in time.
    pub fn time_display(&self) -> String {
        if self.converged {
            format!("{:.4}", self.seconds)
        } else {
            format!("timeout({:.1}s)", self.seconds)
        }
    }
}

/// Renders rows as an aligned plain-text table.
pub fn format_table(title: &str, rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let header = [
        "figure", "workload", "query", "method", "time(s)", "estimate", "lower", "upper",
        "clauses", "vars",
    ];
    let mut table: Vec<Vec<String>> = vec![header.iter().map(|s| s.to_string()).collect()];
    for r in rows {
        table.push(vec![
            r.figure.clone(),
            r.workload.clone(),
            r.query.clone(),
            r.method.clone(),
            r.time_display(),
            format!("{:.6}", r.estimate),
            format!("{:.6}", r.lower),
            format!("{:.6}", r.upper),
            r.clauses.to_string(),
            r.variables.to_string(),
        ]);
    }
    let widths: Vec<usize> = (0..header.len())
        .map(|c| table.iter().map(|row| row[c].len()).max().unwrap_or(0))
        .collect();
    for (i, row) in table.iter().enumerate() {
        let line: Vec<String> =
            row.iter().zip(&widths).map(|(cell, w)| format!("{cell:<w$}")).collect();
        let _ = writeln!(out, "{}", line.join("  "));
        if i == 0 {
            let _ =
                writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        }
    }
    out
}

/// Prints rows as an aligned plain-text table to stdout.
pub fn print_table(title: &str, rows: &[ExperimentRow]) {
    print!("{}", format_table(title, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(method: &str, seconds: f64, converged: bool) -> ExperimentRow {
        ExperimentRow {
            figure: "7".into(),
            workload: "tpch sf=0.05".into(),
            query: "B9".into(),
            method: method.into(),
            seconds,
            estimate: 0.42,
            lower: 0.41,
            upper: 0.43,
            converged,
            clauses: 300,
            variables: 900,
        }
    }

    #[test]
    fn table_contains_all_cells() {
        let rows = vec![row("d-tree(rel 0.01)", 0.0123, true), row("aconf(0.01)", 10.0, false)];
        let s = format_table("Figure 7", &rows);
        assert!(s.contains("Figure 7"));
        assert!(s.contains("d-tree(rel 0.01)"));
        assert!(s.contains("aconf(0.01)"));
        assert!(s.contains("0.0123"));
        assert!(s.contains("timeout(10.0s)"));
        assert!(s.contains("B9"));
        // Header plus separator plus two rows.
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn time_display_marks_timeouts() {
        assert_eq!(row("x", 1.5, true).time_display(), "1.5000");
        assert!(row("x", 1.5, false).time_display().starts_with("timeout"));
    }
}
