//! The arena-vs-legacy decomposition comparison: one reusable measurement
//! shared by the `decomposition` criterion bench and `repro_all --json`, so
//! both report the same numbers into `BENCH_decomp.json`.
//!
//! The end-to-end workload is the fig8 random-graph suite: the global
//! `path2` and `triangle` motif lineages (Shannon-expansion-heavy, where
//! decomposition dominates) plus the `s2(X, Y)` answer relation (many small
//! bound-dominated lineages), each compiled with the d-tree relative
//! 0.01-approximation exactly as the fig8 experiments run it. The **legacy**
//! side is [`dtree::reference`] — the pre-arena owned-`Dnf` compiler kept
//! verbatim in-tree; the **arena** side is the production
//! [`dtree::ApproxCompiler`] over [`events::LineageArena`] views. Both sides
//! produce bit-identical results (asserted here and pinned by the
//! equivalence proptests), so the comparison measures representation cost
//! only.

use std::time::Instant;

use dtree::reference::approx_reference;
use dtree::{ApproxCompiler, ApproxOptions, CompileOptions};
use events::Dnf;
use workloads::{random_graph, s2_relation, RandomGraphConfig};

use crate::report::BenchRecord;

/// Outcome of the end-to-end comparison.
#[derive(Debug, Clone)]
pub struct DecompositionReport {
    /// One record per `(workload, implementation)` pair plus the final
    /// `speedup_x` record (whose `p50_seconds` field carries the ratio, not
    /// a time).
    pub records: Vec<BenchRecord>,
    /// Total p50 seconds of the legacy side across the suite.
    pub legacy_total: f64,
    /// Total p50 seconds of the arena side across the suite.
    pub arena_total: f64,
}

impl DecompositionReport {
    /// End-to-end speedup of the arena path over the pre-arena baseline.
    pub fn speedup(&self) -> f64 {
        self.legacy_total / self.arena_total
    }
}

fn p50(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

/// Runs the fig8 random-graph end-to-end comparison. `smoke` shrinks the
/// graph and repetition count so CI can execute it in seconds.
pub fn fig8_end_to_end(smoke: bool) -> DecompositionReport {
    let nodes = if smoke { 7 } else { 8 };
    let reps = if smoke { 3 } else { 7 };
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(nodes, 0.3));
    let space = db.space();
    let opts = ApproxOptions::relative(0.01)
        .with_compile(CompileOptions::with_origins(db.origins().clone()));
    let compiler = ApproxCompiler::new(opts.clone());

    let s2: Vec<Dnf> = s2_relation(&graph, nodes);
    let workloads: Vec<(&str, Vec<Dnf>)> = vec![
        ("path2", vec![graph.path2_lineage()]),
        ("triangle", vec![graph.triangle_lineage()]),
        ("s2_relation", s2),
    ];

    let mut records = Vec::new();
    let mut legacy_total = 0.0;
    let mut arena_total = 0.0;
    for (name, lineages) in &workloads {
        // Bit-identity sanity before timing anything.
        for lineage in lineages {
            let legacy = approx_reference(lineage, space, &opts);
            let arena = compiler.run(lineage, space);
            assert_eq!(
                legacy.estimate.to_bits(),
                arena.estimate.to_bits(),
                "arena diverged from the pre-arena baseline on {name}"
            );
            assert_eq!(legacy.lower.to_bits(), arena.lower.to_bits());
            assert_eq!(legacy.upper.to_bits(), arena.upper.to_bits());
            assert_eq!(legacy.stats, arena.stats);
        }
        let mut legacy_samples: Vec<f64> = Vec::with_capacity(reps);
        let mut arena_samples: Vec<f64> = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            for lineage in lineages {
                std::hint::black_box(approx_reference(lineage, space, &opts));
            }
            legacy_samples.push(t.elapsed().as_secs_f64());
            let t = Instant::now();
            for lineage in lineages {
                std::hint::black_box(compiler.run(lineage, space));
            }
            arena_samples.push(t.elapsed().as_secs_f64());
        }
        let legacy_p50 = p50(&mut legacy_samples);
        let arena_p50 = p50(&mut arena_samples);
        legacy_total += legacy_p50;
        arena_total += arena_p50;
        for (side, p) in [("legacy", legacy_p50), ("arena", arena_p50)] {
            records.push(BenchRecord {
                name: format!("decomposition/fig8_e2e/{name}/{side}"),
                p50_seconds: p,
                converged_fraction: 1.0,
                samples: reps,
                mean_interval_width: None,
                tuples_per_second: None,
                p50_refresh_seconds: None,
                rss_peak_bytes: None,
                degraded_fraction: None,
            });
        }
        println!(
            "  {name:<12} legacy {legacy_p50:.6}s  arena {arena_p50:.6}s  ({:.2}x)",
            legacy_p50 / arena_p50
        );
    }
    DecompositionReport { records, legacy_total, arena_total }
}

/// Runs the comparison, prints the suite speedup, optionally enforces an
/// acceptance floor, and returns all records including the `speedup_x`
/// summary row.
///
/// `floor` is the minimum acceptable suite speedup: the criterion bench
/// passes the 1.5× acceptance gate (1.0× in smoke mode, where the tiny
/// graph and noisy CI boxes make the full gate flaky); measurement-only
/// callers like `repro_all --json` pass `None` so a slow machine still gets
/// its trajectory recorded instead of a panic.
pub fn decomposition_records(smoke: bool, floor: Option<f64>) -> Vec<BenchRecord> {
    println!(
        "== decomposition: fig8 random-graph end-to-end, arena vs pre-arena baseline{} ==",
        if smoke { " (smoke)" } else { "" }
    );
    let report = fig8_end_to_end(smoke);
    let speedup = report.speedup();
    println!(
        "  suite        legacy {:.6}s  arena {:.6}s  speedup {speedup:.2}x",
        report.legacy_total, report.arena_total
    );
    if let Some(floor) = floor {
        assert!(
            speedup >= floor,
            "arena decomposition speedup {speedup:.2}x fell below the {floor}x floor"
        );
    }
    let mut records = report.records;
    records.push(BenchRecord {
        name: "decomposition/fig8_e2e/speedup_x".to_owned(),
        p50_seconds: speedup,
        converged_fraction: 1.0,
        samples: 1,
        mean_interval_width: None,
        tuples_per_second: None,
        p50_refresh_seconds: None,
        rss_peak_bytes: None,
        degraded_fraction: None,
    });
    records
}
