//! Shared harness for reproducing the figures of the ICDE 2010 evaluation.
//!
//! The paper's evaluation (Section VII) consists of four figures:
//!
//! * **Figure 6 (a)/(b)** — tractable (hierarchical) TPC-H queries, tuple
//!   probabilities in (0, 1) and (0, 0.01);
//! * **Figure 6 (c)** — tractable TPC-H queries with inequality joins
//!   (IQ queries);
//! * **Figure 7** — #P-hard TPC-H queries over a scale-factor sweep;
//! * **Figure 8** — triangle / path-of-length-2 queries on random graphs;
//! * **Figure 9** — motif queries on the karate-club and dolphin social
//!   networks over a relative-error sweep.
//!
//! Each figure has a `repro_*` binary in `src/bin/` that prints the measured
//! series in the same layout as the paper, and a Criterion bench under
//! `benches/`. Both are thin wrappers around the functions in this module so
//! the measured code paths are identical.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Duration;

use events::{Dnf, ProbabilitySpace, VarOrigins};
use pdb::confidence::{confidence, ConfidenceBudget, ConfidenceMethod, ConfidenceResult};
use pdb::{ConfidenceEngine, QueryAnswer};
use workloads::tpch::{TpchConfig, TpchDatabase, TpchQuery};
use workloads::{RandomGraphConfig, SocialNetwork};

pub mod decomposition;
pub mod report;

pub use decomposition::{decomposition_records, fig8_end_to_end, DecompositionReport};
pub use report::{
    append_json, parse_bench_record, print_table, records_from_rows, write_json, BenchRecord,
    ExperimentRow,
};

/// Harness-wide options shared by the repro binaries and the Criterion
/// benches.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Per-(query, method) wall-clock timeout. The paper uses 300 s / 600 s;
    /// the default here is much smaller so a full reproduction terminates in
    /// minutes on a laptop.
    pub timeout: Duration,
    /// TPC-H scale factor used where the paper fixes SF 1.
    pub tpch_scale_factor: f64,
    /// `true` to run at the paper's full (scaled-down SF 1) sizes; set by the
    /// `--paper` flag of the repro binaries.
    pub paper_scale: bool,
    /// When `Some`, the repro binaries also *append* machine-readable
    /// [`BenchRecord`] JSON lines to this path (the `BENCH_*.json`
    /// perf-trajectory format); set by `--json <path>`.
    pub json: Option<PathBuf>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            timeout: Duration::from_secs(10),
            tpch_scale_factor: 0.05,
            paper_scale: false,
            json: None,
        }
    }
}

impl HarnessOptions {
    /// Parses the common command-line flags of the repro binaries:
    /// `--paper`, `--scale <sf>`, `--timeout <seconds>`, `--json <path>`.
    pub fn from_args(args: &[String]) -> Self {
        let mut opts = HarnessOptions::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => {
                    opts.paper_scale = true;
                    opts.tpch_scale_factor = 1.0;
                    opts.timeout = Duration::from_secs(300);
                }
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                        opts.tpch_scale_factor = v;
                        i += 1;
                    }
                }
                "--timeout" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                        opts.timeout = Duration::from_secs(v);
                        i += 1;
                    }
                }
                "--json" => {
                    // Like --scale/--timeout, only consume a plausible value:
                    // `--json --paper` must not swallow the --paper flag.
                    if let Some(p) = args.get(i + 1).filter(|p| !p.starts_with("--")) {
                        opts.json = Some(PathBuf::from(p));
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// The budget handed to every confidence computation.
    pub fn budget(&self) -> ConfidenceBudget {
        ConfidenceBudget { timeout: Some(self.timeout), max_work: None }
    }

    /// Folds `rows` into per-series records and appends them to the `--json`
    /// file, if one was requested. IO errors are reported through
    /// [`obs::warn`], not panicked on: a broken trajectory file must not kill
    /// a long repro run.
    pub fn emit_json(&self, rows: &[ExperimentRow]) {
        let Some(path) = &self.json else { return };
        if let Err(e) = append_json(path, &records_from_rows(rows)) {
            obs::warn(
                "bench.report",
                &format!("could not append bench records to {}: {e}", path.display()),
            );
        }
    }
}

/// The methods compared in Figure 6 (a)/(b): `aconf(0.01)`,
/// `d-tree(rel 0.01)`, `d-tree(0)`. (The SPROUT exact baseline is handled
/// separately because it operates on the query, not on the lineage.)
pub fn fig6_methods() -> Vec<ConfidenceMethod> {
    vec![
        ConfidenceMethod::KarpLuby { epsilon: 0.01, delta: 1e-4 },
        ConfidenceMethod::DTreeRelative(0.01),
        ConfidenceMethod::DTreeExact,
    ]
}

/// The methods compared in Figure 7 (hard queries): `aconf` and `d-tree` at
/// relative errors 0.01 and 0.05.
pub fn fig7_methods() -> Vec<ConfidenceMethod> {
    vec![
        ConfidenceMethod::KarpLuby { epsilon: 0.01, delta: 1e-4 },
        ConfidenceMethod::KarpLuby { epsilon: 0.05, delta: 1e-4 },
        ConfidenceMethod::DTreeRelative(0.01),
        ConfidenceMethod::DTreeRelative(0.05),
    ]
}

/// What [`run_method`] measures: one lineage of one (figure, workload,
/// query) cell, borrowed from the caller. Bundling these removes the
/// eight-positional-argument call sites the harness used to have.
#[derive(Debug, Clone, Copy)]
pub struct MethodRun<'a> {
    /// Figure identifier ("6a" … "9").
    pub figure: &'a str,
    /// Workload description (e.g. "tpch sf=0.05", "karate").
    pub workload: &'a str,
    /// Query name (e.g. "B9", "t", "p2").
    pub query: &'a str,
    /// The lineage DNF under measurement.
    pub lineage: &'a Dnf,
    /// The probability space the lineage is evaluated over.
    pub space: &'a ProbabilitySpace,
    /// Variable-origin metadata enabling the relational elimination orders.
    pub origins: Option<&'a VarOrigins>,
}

/// Runs one method on one lineage DNF and converts the outcome to a report
/// row.
pub fn run_method(
    run: &MethodRun<'_>,
    method: &ConfidenceMethod,
    budget: &ConfidenceBudget,
) -> ExperimentRow {
    let r: ConfidenceResult = confidence(run.lineage, run.space, run.origins, method, budget);
    ExperimentRow {
        figure: run.figure.to_owned(),
        workload: run.workload.to_owned(),
        query: run.query.to_owned(),
        method: r.method.clone(),
        seconds: r.elapsed.as_secs_f64(),
        estimate: r.estimate,
        lower: r.lower,
        upper: r.upper,
        converged: r.converged,
        clauses: run.lineage.len(),
        variables: run.lineage.num_vars(),
    }
}

/// Runs a set of methods over all answers of a TPC-H query through the
/// batched [`ConfidenceEngine`] (shared sub-formula cache, batch-wide
/// deadline), summing the per-answer times (the paper reports the total time
/// to compute the confidences of all answer tuples of a query).
pub fn run_tpch_query(
    figure: &str,
    workload: &str,
    db: &TpchDatabase,
    query: TpchQuery,
    methods: &[ConfidenceMethod],
    budget: &ConfidenceBudget,
) -> Vec<ExperimentRow> {
    let answers: Vec<QueryAnswer> = db.answers(&query);
    let space = db.database().space();
    let origins = db.database().origins();
    let total_clauses: usize = answers.iter().map(|a| a.lineage.len()).sum();
    let total_vars: usize = answers
        .iter()
        .flat_map(|a| a.lineage.vars())
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    let lineages: Vec<&Dnf> = answers.iter().map(|a| &a.lineage).collect();

    let mut rows = Vec::new();
    for method in methods {
        // Single-threaded on purpose: the figure harness reports the summed
        // per-answer algorithm time, which must stay comparable to the
        // paper's sequential measurement (parallel items would inflate each
        // other's `elapsed` through contention). The engine's shared cache
        // and duplicate detection still apply.
        let engine =
            ConfidenceEngine::new(method.clone()).with_budget(budget.clone()).with_threads(1);
        let batch = engine.confidence_batch(&lineages, space, Some(origins));
        let mut seconds = 0.0;
        let mut converged = true;
        let mut estimate_sum = 0.0;
        let mut lower = f64::INFINITY;
        let mut upper = f64::NEG_INFINITY;
        for r in &batch.results {
            seconds += r.elapsed.as_secs_f64();
            converged &= r.converged;
            estimate_sum += r.estimate;
            lower = lower.min(r.lower);
            upper = upper.max(r.upper);
        }
        rows.push(ExperimentRow {
            figure: figure.to_owned(),
            workload: workload.to_owned(),
            query: query.name().to_owned(),
            method: method.label(),
            seconds,
            // For multi-answer queries the "estimate" column reports the
            // mean answer confidence, a compact scalar summary.
            estimate: if answers.is_empty() { 0.0 } else { estimate_sum / answers.len() as f64 },
            lower: if lower.is_finite() { lower } else { 0.0 },
            upper: if upper.is_finite() { upper } else { 0.0 },
            converged,
            clauses: total_clauses,
            variables: total_vars,
        });
    }
    rows
}

/// Runs the SPROUT exact baseline on a TPC-H query (summing per-answer
/// times), returning `None` when SPROUT is not applicable (non-hierarchical
/// queries or queries with inequality predicates).
pub fn run_sprout(
    figure: &str,
    workload: &str,
    db: &TpchDatabase,
    query: TpchQuery,
) -> Option<ExperimentRow> {
    let cq = query.query();
    let start = std::time::Instant::now();
    let confidences = pdb::sprout::answer_confidences(&cq, db.database())?;
    let seconds = start.elapsed().as_secs_f64();
    let n = confidences.len().max(1);
    let mean: f64 = confidences.iter().map(|(_, p)| p).sum::<f64>() / n as f64;
    Some(ExperimentRow {
        figure: figure.to_owned(),
        workload: workload.to_owned(),
        query: query.name().to_owned(),
        method: "SPROUT".to_owned(),
        seconds,
        estimate: mean,
        lower: mean,
        upper: mean,
        converged: true,
        clauses: 0,
        variables: 0,
    })
}

/// Builds the tuple-independent TPC-H database for a figure.
pub fn tpch_database(scale_factor: f64, small_probabilities: bool) -> TpchDatabase {
    let mut cfg = TpchConfig::new(scale_factor);
    if small_probabilities {
        cfg = cfg.with_small_probabilities();
    }
    TpchDatabase::generate(&cfg)
}

/// The graph motif queries evaluated on random graphs and social networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MotifQuery {
    /// Triangle query `t`.
    Triangle,
    /// Path of length 2 (`p2`).
    Path2,
    /// Path of length 3 (`p3`).
    Path3,
    /// Two-degrees-of-separation query `s2` between two fixed nodes.
    Separation2,
}

impl MotifQuery {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            MotifQuery::Triangle => "t",
            MotifQuery::Path2 => "p2",
            MotifQuery::Path3 => "p3",
            MotifQuery::Separation2 => "s2",
        }
    }

    /// The queries used in Figure 8 (random graphs).
    pub fn random_graph_queries() -> Vec<MotifQuery> {
        vec![MotifQuery::Triangle, MotifQuery::Path2]
    }

    /// The queries used in Figure 9 (social networks).
    pub fn social_queries() -> Vec<MotifQuery> {
        vec![MotifQuery::Triangle, MotifQuery::Path2, MotifQuery::Path3, MotifQuery::Separation2]
    }

    /// Constructs the query lineage over a probabilistic graph. `sep_pair`
    /// supplies the two endpoints of the separation query.
    pub fn lineage(&self, graph: &pdb::motif::ProbGraph, sep_pair: (u32, u32)) -> Dnf {
        match self {
            MotifQuery::Triangle => graph.triangle_lineage(),
            MotifQuery::Path2 => graph.path2_lineage(),
            MotifQuery::Path3 => graph.path3_lineage(),
            MotifQuery::Separation2 => graph.separation2_lineage(sep_pair.0, sep_pair.1),
        }
    }
}

/// Runs the Figure-8 style comparison (aconf vs d-tree, relative error) for
/// one random graph and one motif query.
pub fn run_random_graph(
    figure: &str,
    nodes: u32,
    edge_probability: f64,
    query: MotifQuery,
    methods: &[ConfidenceMethod],
    budget: &ConfidenceBudget,
) -> Vec<ExperimentRow> {
    let (db, graph) = workloads::random_graph(&RandomGraphConfig::uniform(nodes, edge_probability));
    let lineage = query.lineage(&graph, (0, nodes.saturating_sub(1)));
    let workload = format!("clique n={nodes} p={edge_probability}");
    let run = MethodRun {
        figure,
        workload: &workload,
        query: query.label(),
        lineage: &lineage,
        space: db.space(),
        origins: Some(db.origins()),
    };
    methods.iter().map(|m| run_method(&run, m, budget)).collect()
}

/// Runs one motif query on a social network with the given methods.
pub fn run_social_network(
    figure: &str,
    network: &SocialNetwork,
    query: MotifQuery,
    methods: &[ConfidenceMethod],
    budget: &ConfidenceBudget,
) -> Vec<ExperimentRow> {
    let lineage = query.lineage(&network.graph, network.separation_pair());
    let run = MethodRun {
        figure,
        workload: &network.name,
        query: query.label(),
        lineage: &lineage,
        space: network.db.space(),
        origins: Some(network.db.origins()),
    };
    methods.iter().map(|m| run_method(&run, m, budget)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::SocialNetworkConfig;

    #[test]
    fn harness_options_parse_flags() {
        let args: Vec<String> =
            ["--scale", "0.1", "--timeout", "3"].iter().map(|s| s.to_string()).collect();
        let opts = HarnessOptions::from_args(&args);
        assert!((opts.tpch_scale_factor - 0.1).abs() < 1e-12);
        assert_eq!(opts.timeout, Duration::from_secs(3));
        assert!(!opts.paper_scale);
        assert_eq!(opts.json, None);
        let paper = HarnessOptions::from_args(&["--paper".to_owned()]);
        assert!(paper.paper_scale);
        assert!((paper.tpch_scale_factor - 1.0).abs() < 1e-12);
        let json = HarnessOptions::from_args(&["--json".to_owned(), "BENCH_x.json".to_owned()]);
        assert_eq!(json.json, Some(PathBuf::from("BENCH_x.json")));
    }

    #[test]
    fn emit_json_appends_series_records() {
        let dir = std::env::temp_dir().join(format!("bench_emit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_emit.json");
        let opts = HarnessOptions { json: Some(path.clone()), ..Default::default() };
        let (db, graph) = workloads::random_graph(&RandomGraphConfig::uniform(6, 0.4));
        let lineage = MotifQuery::Triangle.lineage(&graph, (0, 5));
        let run = MethodRun {
            figure: "8",
            workload: "clique n=6",
            query: "t",
            lineage: &lineage,
            space: db.space(),
            origins: Some(db.origins()),
        };
        let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(5)), max_work: None };
        let rows = vec![run_method(&run, &ConfidenceMethod::DTreeExact, &budget)];
        opts.emit_json(&rows);
        opts.emit_json(&rows);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.contains("\"name\":\"fig8/t/d-tree(0)\""), "{content}");
        std::fs::remove_dir_all(&dir).unwrap();
        // No path configured: a silent no-op.
        HarnessOptions::default().emit_json(&rows);
    }

    #[test]
    fn tpch_harness_produces_rows_for_all_methods() {
        let db = tpch_database(0.01, false);
        let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(5)), max_work: None };
        let rows = run_tpch_query("6a", "tpch", &db, TpchQuery::B1, &fig6_methods(), &budget);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.seconds >= 0.0);
            assert!(r.estimate >= 0.0 && r.estimate <= 1.0);
        }
        // The two d-tree variants must agree tightly with each other.
        let exact = rows.iter().find(|r| r.method == "d-tree(0)").unwrap().estimate;
        let approx = rows.iter().find(|r| r.method.contains("rel")).unwrap().estimate;
        assert!((exact - approx).abs() <= 0.011 * exact.max(1e-12) + 1e-9);
    }

    #[test]
    fn sprout_runs_on_hierarchical_queries_only() {
        let db = tpch_database(0.01, false);
        assert!(run_sprout("6a", "tpch", &db, TpchQuery::B6).is_some());
        assert!(run_sprout("7", "tpch", &db, TpchQuery::B9).is_none());
        assert!(run_sprout("6c", "tpch", &db, TpchQuery::IqB1).is_none());
    }

    #[test]
    fn sprout_agrees_with_dtree_exact() {
        let db = tpch_database(0.01, false);
        let budget = ConfidenceBudget::default();
        for q in [TpchQuery::B1, TpchQuery::B16, TpchQuery::B17] {
            let sprout = run_sprout("6a", "tpch", &db, q).unwrap();
            let dtree =
                run_tpch_query("6a", "tpch", &db, q, &[ConfidenceMethod::DTreeExact], &budget);
            assert!(
                (sprout.estimate - dtree[0].estimate).abs() < 1e-9,
                "{}: {} vs {}",
                q.name(),
                sprout.estimate,
                dtree[0].estimate
            );
        }
    }

    #[test]
    fn random_graph_rows_have_consistent_estimates() {
        let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(5)), max_work: None };
        let rows = run_random_graph(
            "8",
            8,
            0.3,
            MotifQuery::Triangle,
            &[ConfidenceMethod::DTreeRelative(0.01), ConfidenceMethod::DTreeExact],
            &budget,
        );
        assert_eq!(rows.len(), 2);
        let exact = rows[1].estimate;
        assert!((rows[0].estimate - exact).abs() <= 0.011 * exact + 1e-9);
    }

    #[test]
    fn social_network_rows_cover_all_queries() {
        let net = workloads::karate_club(&SocialNetworkConfig::karate_default());
        let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(5)), max_work: None };
        for q in MotifQuery::social_queries() {
            let rows =
                run_social_network("9", &net, q, &[ConfidenceMethod::DTreeRelative(0.05)], &budget);
            assert_eq!(rows.len(), 1);
            assert!(rows[0].converged, "query {} did not converge", q.label());
        }
    }
}
