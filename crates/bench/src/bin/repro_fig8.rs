//! Reproduces Figure 8 of the paper: triangle and path-of-length-2 queries on
//! random graphs.
//!
//! * Top/middle plots: relative error 0.01, edge probabilities 0.3 and 0.7,
//!   graph sizes 6..40 nodes — `aconf` vs `d-tree`.
//! * Bottom plot: absolute error 0.05, edge probabilities 0.1 and 0.01,
//!   graph sizes 6, 10, 15 — `d-tree` only.
//!
//! Usage: `cargo run --release -p bench --bin repro_fig8 [relative|absolute]
//! [--timeout SECONDS] [--paper] [--json PATH]`

use bench::{print_table, run_random_graph, HarnessOptions, MotifQuery};
use pdb::confidence::ConfidenceMethod;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = HarnessOptions::from_args(&args);
    let budget = opts.budget();
    let run_relative =
        args.iter().any(|a| a == "relative") || !args.iter().any(|a| a == "absolute");
    let run_absolute =
        args.iter().any(|a| a == "absolute") || !args.iter().any(|a| a == "relative");

    // Graph sizes: the paper sweeps 6..=40; the default here uses a coarser
    // grid so the run finishes quickly, and --paper uses the full range.
    let sizes: Vec<u32> =
        if opts.paper_scale { vec![6, 10, 15, 20, 25, 30, 35, 40] } else { vec![6, 10, 15, 20] };

    if run_relative {
        let methods = [
            ConfidenceMethod::KarpLuby { epsilon: 0.01, delta: 1e-4 },
            ConfidenceMethod::DTreeRelative(0.01),
        ];
        for query in MotifQuery::random_graph_queries() {
            let mut rows = Vec::new();
            for &p in &[0.7, 0.3] {
                for &n in &sizes {
                    rows.extend(run_random_graph("8", n, p, query, &methods, &budget));
                }
            }
            print_table(
                &format!("Figure 8: {} query on random graphs, relative error 0.01", query.label()),
                &rows,
            );
            opts.emit_json(&rows);
            println!();
        }
    }

    if run_absolute {
        let methods = [ConfidenceMethod::DTreeAbsolute(0.05)];
        let mut rows = Vec::new();
        for query in MotifQuery::random_graph_queries() {
            for &p in &[0.1, 0.01] {
                for &n in &[6u32, 10, 15] {
                    rows.extend(run_random_graph("8", n, p, query, &methods, &budget));
                }
            }
        }
        print_table(
            "Figure 8 (bottom): triangle and path-2 queries, absolute error 0.05, small edge probabilities",
            &rows,
        );
        opts.emit_json(&rows);
        println!();
    }
}
