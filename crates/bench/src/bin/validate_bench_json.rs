//! CI guard for the committed perf-trajectory artifacts: parses every
//! `BENCH_*.json` file at the workspace root (or the paths given as
//! arguments) against the [`bench::BenchRecord`] JSON-lines schema and fails
//! on malformed lines or duplicate series names within a file — the two ways
//! a bad merge or a crashed bench writer corrupts the trajectory history.
//! `METRICS_*.json` files (observability snapshots such as the committed
//! fig7 width-trajectory capture) are validated against the strict
//! `obs::snapshot` schema instead — section order, unique metric names,
//! monotone event sequence numbers, and the synthetic `obs.trace.dropped`
//! counter all enforced.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files = if args.is_empty() {
        match discover_workspace_files() {
            Ok(files) => files,
            Err(e) => {
                eprintln!("validate_bench_json: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        args.into_iter().map(PathBuf::from).collect()
    };

    let mut total_records = 0usize;
    let mut failures = 0usize;
    for path in &files {
        let result =
            if is_metrics_file(path) { validate_metrics(path) } else { validate_file(path) };
        match result {
            Ok(n) => {
                println!("  {} — {n} records ok", path.display());
                total_records += n;
            }
            Err(e) => {
                eprintln!("  {} — {e}", path.display());
                failures += 1;
            }
        }
    }
    println!(
        "validate_bench_json: {total_records} records across {} files, {failures} invalid",
        files.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `true` for files validated as observability snapshots.
fn is_metrics_file(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("METRICS_") && n.ends_with(".json"))
}

/// All `BENCH_*.json` and `METRICS_*.json` files at the workspace root, in
/// stable (sorted) order. The root is located relative to this crate's
/// manifest, so the bin works regardless of the invoking directory.
fn discover_workspace_files() -> Result<Vec<PathBuf>, String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&root)
        .map_err(|e| format!("cannot read workspace root {}: {e}", root.display()))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            let bench = name.starts_with("BENCH_") && name.ends_with(".json");
            let metrics = name.starts_with("METRICS_") && name.ends_with(".json");
            (bench || metrics).then_some(path)
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no BENCH_*.json or METRICS_*.json files found at {}", root.display()));
    }
    Ok(files)
}

/// Validates one JSON-lines file; returns the number of records on success.
fn validate_file(path: &Path) -> Result<usize, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read file: {e}"))?;
    let mut seen: HashSet<String> = HashSet::new();
    let mut count = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record =
            bench::parse_bench_record(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if !seen.insert(record.name.clone()) {
            return Err(format!("line {}: duplicate series name {:?}", lineno + 1, record.name));
        }
        count += 1;
    }
    if count == 0 {
        return Err("file holds no records".to_owned());
    }
    Ok(count)
}

/// Validates one observability snapshot; returns the number of metric and
/// event lines on success.
fn validate_metrics(path: &Path) -> Result<usize, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read file: {e}"))?;
    let snap = obs::snapshot::parse_json_lines(&content)?;
    let count =
        snap.counters.len() + snap.gauges.len() + snap.histograms.len() + snap.events.len() + 1; // the synthetic obs.trace.dropped counter, required in every export
    Ok(count)
}
