//! Diagnostic tool: prints the bounds trajectory of the d-tree approximation
//! on the hard TPC-H queries for increasing step budgets. Useful for
//! understanding how quickly the incremental compilation converges (and for
//! tuning the variable-order / closing heuristics).
//!
//! Usage: `cargo run --release -p bench --bin diagnose_hard [--scale SF]`

use std::time::{Duration, Instant};

use bench::{tpch_database, HarnessOptions};
use dtree::{ApproxCompiler, ApproxOptions, CompileOptions, ErrorBound};
use workloads::tpch::TpchQuery;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = HarnessOptions::from_args(&args);
    if !args.iter().any(|a| a == "--scale") {
        opts.tpch_scale_factor = 0.05;
    }
    let db = tpch_database(opts.tpch_scale_factor, false);

    for q in TpchQuery::hard() {
        let lineage = db.boolean_lineage(&q);
        println!(
            "== query {}: {} clauses, {} variables ==",
            q.name(),
            lineage.len(),
            lineage.num_vars()
        );
        for error in
            [ErrorBound::Relative(0.05), ErrorBound::Relative(0.01), ErrorBound::Absolute(0.01)]
        {
            for max_steps in [10usize, 100, 1_000, 10_000, 100_000] {
                let approx_opts = ApproxOptions {
                    error,
                    compile: CompileOptions::with_origins(db.database().origins().clone()),
                    strategy: Default::default(),
                    max_steps: Some(max_steps),
                    timeout: Some(Duration::from_secs(20)),
                };
                let start = Instant::now();
                let r = ApproxCompiler::new(approx_opts).run(&lineage, db.database().space());
                println!(
                    "  {:?} steps<={:<7} -> steps={:<7} nodes={:<7} closed={:<6} bounds=[{:.4},{:.4}] conv={} {:.3}s",
                    error,
                    max_steps,
                    r.steps,
                    r.stats.inner_nodes(),
                    r.stats.closed_leaves,
                    r.lower,
                    r.upper,
                    r.converged,
                    start.elapsed().as_secs_f64()
                );
                if r.converged {
                    break;
                }
            }
        }
    }
}
