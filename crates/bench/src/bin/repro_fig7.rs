//! Reproduces Figure 7 of the paper: the #P-hard Boolean TPC-H queries B2,
//! B9, B20, B21 over a scale-factor sweep, comparing `aconf` and `d-tree` at
//! relative errors 0.01 and 0.05.
//!
//! Usage: `cargo run --release -p bench --bin repro_fig7 [--timeout SECONDS]
//! [--paper] [--json PATH]`
//!
//! The default sweep is {0.005, 0.01, 0.05, 0.1}; `--paper` extends it to the
//! paper's full {0.005, 0.01, 0.05, 0.1, 0.5, 1} (slower).

use bench::{fig7_methods, print_table, run_tpch_query, tpch_database, HarnessOptions};
use workloads::tpch::TpchQuery;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = HarnessOptions::from_args(&args);
    let budget = opts.budget();

    let mut scale_factors = vec![0.005, 0.01, 0.05, 0.1];
    if opts.paper_scale {
        scale_factors.extend([0.5, 1.0]);
    }

    for q in TpchQuery::hard() {
        let mut rows = Vec::new();
        for &sf in &scale_factors {
            let db = tpch_database(sf, false);
            rows.extend(run_tpch_query(
                "7",
                &format!("tpch sf={sf}"),
                &db,
                q,
                &fig7_methods(),
                &budget,
            ));
        }
        print_table(&format!("Figure 7: hard TPC-H query {}, scale-factor sweep", q.name()), &rows);
        opts.emit_json(&rows);
        println!();
    }
}
