//! Reproduces Figure 9 of the paper: the motif queries (t, p2, p3, s2) on the
//! dolphin and karate-club social networks over a relative-error sweep,
//! comparing `aconf` and `d-tree`.
//!
//! Usage: `cargo run --release -p bench --bin repro_fig9 [karate|dolphins]
//! [--timeout SECONDS] [--paper] [--json PATH]`

use bench::{print_table, run_social_network, HarnessOptions, MotifQuery};
use pdb::confidence::ConfidenceMethod;
use workloads::{dolphins, karate_club, SocialNetwork, SocialNetworkConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = HarnessOptions::from_args(&args);
    let budget = opts.budget();

    let want_karate = args.iter().any(|a| a == "karate") || !args.iter().any(|a| a == "dolphins");
    let want_dolphins = args.iter().any(|a| a == "dolphins") || !args.iter().any(|a| a == "karate");

    // The paper sweeps relative errors 0.05 down to 0.0001.
    let errors: Vec<f64> = if opts.paper_scale {
        vec![0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001]
    } else {
        vec![0.05, 0.01, 0.001]
    };

    let mut networks: Vec<SocialNetwork> = Vec::new();
    if want_dolphins {
        networks.push(dolphins(&SocialNetworkConfig::dolphins_default()));
    }
    if want_karate {
        networks.push(karate_club(&SocialNetworkConfig::karate_default()));
    }

    for network in &networks {
        let mut rows = Vec::new();
        for query in MotifQuery::social_queries() {
            for &eps in &errors {
                let methods = [
                    ConfidenceMethod::KarpLuby { epsilon: eps, delta: 1e-4 },
                    ConfidenceMethod::DTreeRelative(eps),
                ];
                rows.extend(run_social_network("9", network, query, &methods, &budget));
            }
        }
        print_table(
            &format!("Figure 9: {} social network, relative-error sweep", network.name),
            &rows,
        );
        opts.emit_json(&rows);
        println!();
    }
}
