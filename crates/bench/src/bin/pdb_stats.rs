//! `pdb-stats` — renders observability snapshots as text reports and
//! captures the anytime width-tightening trajectory of a Figure-7 hard run.
//!
//! Three modes:
//!
//! * `pdb-stats --file PATH` — parse an exported JSON-lines metrics snapshot
//!   (the format produced by `obs::Obs::export_json_lines`) and print the
//!   human-readable report. Exits non-zero if the file fails strict
//!   validation, so it doubles as a schema checker.
//! * `pdb-stats --fig7 [PATH]` — run the #P-hard Boolean TPC-H queries of
//!   Figure 7 under a live registry, resuming each compilation in fixed step
//!   slices so the `dtree.slice` trace events record the interval-width
//!   trajectory, then write the registry snapshot to `PATH` (default
//!   `METRICS_fig7.json`) and print the report.
//! * `pdb-stats --smoke` — fast self-check used by CI: exercise the engine
//!   and the disk store with a live registry, export, re-parse, and verify
//!   the snapshot round-trips exactly.

use std::time::Duration;

use dtree::{ApproxCompiler, ApproxOptions, ResumeBudget};
use obs::snapshot::parse_json_lines;
use obs::Obs;
use pdb::ConfidenceEngine;
use workloads::tpch::TpchQuery;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("--file") => match args.get(1) {
            Some(path) => report_file(path),
            None => usage(),
        },
        Some("--fig7") => {
            fig7_capture(args.get(1).map(String::as_str).unwrap_or("METRICS_fig7.json"))
        }
        Some("--smoke") => smoke(),
        _ => usage(),
    };
    std::process::exit(code);
}

fn usage() -> i32 {
    eprintln!(
        "usage: pdb-stats --file PATH    render a report from an exported snapshot\n\
         \x20      pdb-stats --fig7 [PATH]  capture the fig7 width trajectory (default METRICS_fig7.json)\n\
         \x20      pdb-stats --smoke        self-check: exercise, export, re-parse"
    );
    2
}

/// Parses `path` strictly and prints the text report.
fn report_file(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("pdb-stats: cannot read {path}: {e}");
            return 1;
        }
    };
    match parse_json_lines(&text) {
        Ok(snap) => {
            print!("{}", snap.render_report());
            0
        }
        Err(e) => {
            eprintln!("pdb-stats: {path} is not a valid metrics snapshot: {e}");
            1
        }
    }
}

/// Steps per resume slice in the fig7 capture: small enough that each hard
/// query yields a multi-point trajectory, large enough to finish in seconds.
const FIG7_SLICE_STEPS: usize = 256;
/// Slice cap per query — with ε = 0 the hard queries never converge early,
/// so this cap is what bounds the run (and sizes the trajectory).
const FIG7_MAX_SLICES: usize = 48;

/// Runs the Figure-7 hard suite (B2, B9, B20, B21 at SF 0.005) in resume
/// slices under a live registry and writes the snapshot to `out`. The ε = 0
/// d-tree method is used so the whole budget goes into width tightening —
/// the same regime as the `resume_refinement` bench.
fn fig7_capture(out: &str) -> i32 {
    let obs = Obs::enabled();
    let db = bench::tpch_database(0.005, false);
    // Truncate the initial run after one slice's worth of steps so the
    // remaining refinement happens in instrumented resume slices.
    let compiler =
        ApproxCompiler::new(ApproxOptions::absolute(0.0).with_max_steps(FIG7_SLICE_STEPS));
    for query in TpchQuery::hard() {
        let lineage = db.boolean_lineage(&query);
        let space = db.database().space();
        let (_, handle) = compiler.run_resumable(&lineage, space, None);
        let Some(mut handle) = handle else { continue };
        handle.attach_obs(&obs);
        let mut slices = 0;
        while !handle.is_converged() && !handle.is_poisoned() && slices < FIG7_MAX_SLICES {
            handle.resume(space, ResumeBudget::steps(FIG7_SLICE_STEPS));
            slices += 1;
        }
        obs.event("fig7.query")
            .str("query", query.name())
            .u64("slices", slices as u64)
            .u64("steps", handle.total_steps() as u64)
            .f64("width", handle.width())
            .bool("converged", handle.is_converged())
            .emit();
        println!(
            "{}: {} slices, {} steps, width {:.3e}, converged={}",
            query.name(),
            slices,
            handle.total_steps(),
            handle.width(),
            handle.is_converged()
        );
    }
    let text = obs.export_json_lines();
    if let Err(e) = parse_json_lines(&text) {
        eprintln!("pdb-stats: captured snapshot fails its own validation: {e}");
        return 1;
    }
    if let Err(e) = std::fs::write(out, &text) {
        eprintln!("pdb-stats: cannot write {out}: {e}");
        return 1;
    }
    println!("wrote {} lines to {out}", text.lines().count());
    print!("{}", obs.snapshot().expect("registry is enabled").render_report());
    0
}

/// CI self-check: engine batch + disk store under a live registry, then an
/// exact export/parse round-trip. Prints the report on success.
fn smoke() -> i32 {
    use events::{Clause, Dnf, ProbabilitySpace};
    use pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
    use pdb::storage::testutil::TempDir;
    use pdb::{Database, Value};

    let obs = Obs::enabled();

    // Engine traffic: a small batch over a shared space.
    let mut space = ProbabilitySpace::new();
    let vars: Vec<_> =
        (0..6).map(|i| space.add_bool(format!("v{i}"), 0.1 + 0.1 * i as f64)).collect();
    let lineages: Vec<Dnf> = (0..4)
        .map(|i| {
            Dnf::from_clauses(vec![
                Clause::from_bools(&[vars[i], vars[i + 1]]),
                Clause::from_bools(&[vars[i + 2]]),
            ])
        })
        .collect();
    let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(0.001))
        .with_budget(ConfidenceBudget { timeout: Some(Duration::from_secs(5)), max_work: None })
        .with_obs(&obs);
    let batch = engine.confidence_batch(&lineages, &space, None);
    if !batch.all_converged() {
        eprintln!("pdb-stats: smoke batch failed to converge");
        return 1;
    }

    // Storage traffic: append, flush (rotates the WAL), and a keyed lookup
    // that exercises the bloom pass/reject counters.
    let dir = TempDir::new("pdb-stats-smoke");
    let mut db = Database::open_disk(dir.path(), 256).expect("open disk db");
    db.attach_obs(&obs);
    let mut writer = db.tuple_writer("S", &["a"]);
    for i in 0..8 {
        writer.push(vec![Value::Int(i)], 0.25);
    }
    drop(writer);
    let stats = db.storage_stats();
    if stats.flushes == 0 || stats.wal_rotations != stats.flushes {
        eprintln!(
            "pdb-stats: smoke store expected rotations == flushes > 0, got {} / {}",
            stats.wal_rotations, stats.flushes
        );
        return 1;
    }
    drop(db);
    {
        use pdb::storage::{DiskStore, TableStore};
        let (mut store, _) = DiskStore::open(dir.path(), 256).expect("reopen disk store");
        store.attach_obs(&obs);
        let row = store.get_row("S", 0).expect("keyed lookup");
        if row.is_none() {
            eprintln!("pdb-stats: smoke keyed lookup missed a flushed row");
            return 1;
        }
    }

    // Export, re-parse, and require the exact-round-trip invariant.
    let text = obs.export_json_lines();
    let parsed = match parse_json_lines(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("pdb-stats: smoke export fails validation: {e}");
            return 1;
        }
    };
    let original = obs.snapshot().expect("registry is enabled");
    if parsed != original {
        eprintln!("pdb-stats: smoke export does not round-trip");
        return 1;
    }
    for required in
        ["engine.items", "storage.wal.rotations", "storage.flushes", "storage.bloom.pass"]
    {
        if !original.counters.iter().any(|(n, v)| n == required && *v > 0) {
            eprintln!("pdb-stats: smoke registry is missing a non-zero {required}");
            return 1;
        }
    }
    print!("{}", original.render_report());
    println!("smoke ok: {} export lines round-trip exactly", text.lines().count());
    0
}
