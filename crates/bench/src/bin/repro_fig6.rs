//! Reproduces Figure 6 of the paper: tractable TPC-H queries.
//!
//! * Figure 6 (a): hierarchical queries 1, 15, B1, B6, B16, B17 with tuple
//!   probabilities in (0, 1) — `aconf(0.01)`, `d-tree(rel 0.01)`,
//!   `d-tree(0)`, SPROUT.
//! * Figure 6 (b): the same queries with tuple probabilities in (0, 0.01).
//! * Figure 6 (c): the IQ (inequality-join) queries IQ B1, IQ B4, IQ 6. The
//!   paper's SPROUT-with-inequalities operator is represented here by
//!   `d-tree(0)` with the IQ elimination order (see EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p bench --bin repro_fig6 [a|b|c] [--scale SF]
//! [--timeout SECONDS] [--paper] [--json PATH]`

use bench::{fig6_methods, print_table, run_sprout, run_tpch_query, tpch_database, HarnessOptions};
use workloads::tpch::TpchQuery;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = HarnessOptions::from_args(&args);
    let which: Vec<&str> =
        args.iter().filter(|a| ["a", "b", "c"].contains(&a.as_str())).map(|a| a.as_str()).collect();
    let which = if which.is_empty() { vec!["a", "b", "c"] } else { which };
    let budget = opts.budget();

    for part in which {
        match part {
            "a" | "b" => {
                let small = part == "b";
                let db = tpch_database(opts.tpch_scale_factor, small);
                let title = format!(
                    "Figure 6({part}): tractable TPC-H queries, SF {}, probabilities in {}",
                    opts.tpch_scale_factor,
                    if small { "(0, 0.01)" } else { "(0, 1)" }
                );
                let mut rows = Vec::new();
                for q in TpchQuery::tractable() {
                    rows.extend(run_tpch_query(
                        &format!("6{part}"),
                        "tpch",
                        &db,
                        q,
                        &fig6_methods(),
                        &budget,
                    ));
                    if let Some(sprout) = run_sprout(&format!("6{part}"), "tpch", &db, q) {
                        rows.push(sprout);
                    }
                }
                print_table(&title, &rows);
                opts.emit_json(&rows);
                println!();
            }
            "c" => {
                let db = tpch_database(opts.tpch_scale_factor, false);
                let title = format!(
                    "Figure 6(c): TPC-H conjunctive queries with inequality joins, SF {}",
                    opts.tpch_scale_factor
                );
                let mut rows = Vec::new();
                for q in TpchQuery::iq() {
                    rows.extend(run_tpch_query("6c", "tpch", &db, q, &fig6_methods(), &budget));
                }
                print_table(&title, &rows);
                opts.emit_json(&rows);
                println!();
            }
            _ => unreachable!(),
        }
    }
}
