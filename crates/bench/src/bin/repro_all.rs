//! Runs the whole evaluation (Figures 6–9) back to back with the default
//! laptop-scale settings. Equivalent to running `repro_fig6`, `repro_fig7`,
//! `repro_fig8`, and `repro_fig9` in sequence; accepts the same flags
//! (`--scale`, `--timeout`, `--paper`, `--json PATH`). With `--json`, every
//! figure *appends* its `BenchRecord` rows to the same file, so one run
//! produces one machine-readable perf-trajectory sample (delete the file
//! first for a fresh one) — and the arena-vs-legacy decomposition comparison
//! additionally appends its records to `BENCH_decomp.json` next to the
//! given path, extending that trajectory per run.

use std::process::Command;

fn main() {
    // Collect warnings (and any metrics the harness records in-process) in a
    // live registry for the duration of the run.
    obs::install_global(obs::Obs::enabled());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = ["repro_fig6", "repro_fig7", "repro_fig8", "repro_fig9"];
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("cannot locate the build directory");
    for bin in bins {
        let path = exe_dir.join(bin);
        println!("==== {bin} ====");
        let status = if path.exists() {
            Command::new(&path).args(&args).status()
        } else {
            // Fall back to cargo when the sibling binary has not been built
            // (e.g. `cargo run --bin repro_all` without a prior full build).
            Command::new("cargo")
                .args(["run", "--quiet", "--release", "-p", "bench", "--bin", bin, "--"])
                .args(&args)
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => obs::warn("bench.repro", &format!("{bin} exited with {s}")),
            Err(e) => obs::warn("bench.repro", &format!("failed to launch {bin}: {e}")),
        }
    }

    // With --json, also run the arena-vs-legacy decomposition comparison and
    // append its records to BENCH_decomp.json in the directory of the
    // requested trajectory file (the repo root in the committed layout).
    let opts = bench::HarnessOptions::from_args(&args);
    if let Some(json) = &opts.json {
        println!("==== decomposition ====");
        let records = bench::decomposition_records(false, None);
        let path = json
            .parent()
            .map(|d| d.join("BENCH_decomp.json"))
            .unwrap_or_else(|| std::path::PathBuf::from("BENCH_decomp.json"));
        match bench::append_json(&path, &records) {
            Ok(()) => {
                println!("appended {} decomposition records to {}", records.len(), path.display())
            }
            Err(e) => {
                obs::warn("bench.repro", &format!("could not append to {}: {e}", path.display()))
            }
        }
    }
}
