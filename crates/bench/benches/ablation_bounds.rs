//! Ablation bench: the leaf-bound heuristics.
//!
//! Compares, on hard-query lineage and on social-network motif lineage,
//!
//! * the bucket heuristic exactly as written in Figure 3 of the paper
//!   (`dnf_bounds_fig3`, descending-probability ordering),
//! * the unsorted bucket heuristic (no descending-probability refinement),
//! * the strengthened default (`dnf_bounds`: Figure 3 plus the monotone-DNF
//!   independent-union upper bound).
//!
//! Reported per variant: the time to evaluate the bounds once. The companion
//! `diagnose_hard` binary reports how the variants affect end-to-end
//! convergence.

use std::time::Duration;

use bench::{tpch_database, MotifQuery};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtree::{dnf_bounds, dnf_bounds_fig3, dnf_bounds_sorted};
use events::Dnf;
use workloads::tpch::TpchQuery;
use workloads::{karate_club, SocialNetworkConfig};

fn lineages() -> Vec<(String, events::ProbabilitySpace, Dnf)> {
    let mut out = Vec::new();
    let db = tpch_database(0.02, false);
    for q in [TpchQuery::B2, TpchQuery::B9, TpchQuery::B21] {
        out.push((
            format!("tpch_{}", q.name()),
            db.database().space().clone(),
            db.boolean_lineage(&q),
        ));
    }
    let net = karate_club(&SocialNetworkConfig::karate_default());
    out.push((
        "karate_triangle".to_owned(),
        net.db.space().clone(),
        MotifQuery::Triangle.lineage(&net.graph, net.separation_pair()),
    ));
    out.push((
        "karate_path2".to_owned(),
        net.db.space().clone(),
        MotifQuery::Path2.lineage(&net.graph, net.separation_pair()),
    ));
    out
}

fn bench_bounds(c: &mut Criterion) {
    let inputs = lineages();
    let mut group = c.benchmark_group("ablation_leaf_bounds");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    for (name, space, dnf) in &inputs {
        group.bench_with_input(BenchmarkId::new("fig3_sorted", name), dnf, |b, dnf| {
            b.iter(|| dnf_bounds_fig3(dnf, space))
        });
        group.bench_with_input(BenchmarkId::new("fig3_unsorted", name), dnf, |b, dnf| {
            b.iter(|| dnf_bounds_sorted(dnf, space, false))
        });
        group.bench_with_input(BenchmarkId::new("fig3_plus_fkg", name), dnf, |b, dnf| {
            b.iter(|| dnf_bounds(dnf, space))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
