//! Criterion bench for **cross-batch** cache reuse: production traffic
//! repeats whole queries, so the second batch of the same query should be
//! served largely from a long-lived [`SubformulaCache`] attached with
//! [`ConfidenceEngine::with_shared_cache`].
//!
//! Series per workload:
//!
//! * `cold` — every iteration starts from a fresh shared cache, i.e. the
//!   first batch of a query the system has never seen (this matches the
//!   default per-batch cache mode).
//! * `warm` — one long-lived cache, pre-warmed by a full batch before
//!   timing, so every iteration is the steady-state repeated batch. The
//!   acceptance target is warm ≥ 1.3× faster than cold.
//! * `warm_bounded` — the same, but the cache is capped well below the
//!   workload's footprint, so the clock eviction policy churns on every
//!   batch; this bounds the cost of running memory-capped.
//!
//! Results are bit-identical across all series (asserted at startup).
//!
//! Workloads: the `s2(X, Y)` answer relation on a uniform random graph (the
//! fig8 shape, big overlapping lineages) with the d-tree absolute
//! approximation, and the same relation under d-tree exact evaluation, whose
//! warm batches collapse to one top-level cache hit per lineage.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtree::SubformulaCache;
use pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
use pdb::ConfidenceEngine;
use workloads::{random_graph, s2_relation, RandomGraphConfig};

fn bench_cache_reuse(c: &mut Criterion) {
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(10)), max_work: None };
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(20, 0.4));
    let lineages = s2_relation(&graph, 20);
    let space = db.space();
    let origins = db.origins();

    let methods: Vec<(&str, ConfidenceMethod)> = vec![
        ("graph_s2_abs0.01", ConfidenceMethod::DTreeAbsolute(0.01)),
        ("graph_s2_exact", ConfidenceMethod::DTreeExact),
    ];

    let mut group = c.benchmark_group("cache_reuse");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (name, method) in &methods {
        // Sanity: warm results are bit-identical to cache-off results.
        let plain = ConfidenceEngine::new(method.clone())
            .with_budget(budget.clone())
            .without_cache()
            .confidence_batch(&lineages, space, Some(origins));
        let warm_check = Arc::new(SubformulaCache::new());
        let warm_engine = ConfidenceEngine::new(method.clone())
            .with_budget(budget.clone())
            .with_shared_cache(Arc::clone(&warm_check));
        let _ = warm_engine.confidence_batch(&lineages, space, Some(origins));
        let repeat = warm_engine.confidence_batch(&lineages, space, Some(origins));
        assert!(repeat.cache.hits > 0, "warm batch must hit: {:?}", repeat.cache);
        for (a, b) in plain.results.iter().zip(&repeat.results) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }

        // Cold: a fresh shared cache per iteration (first-ever batch).
        group.bench_with_input(BenchmarkId::new("cold", name), &lineages, |b, lineages| {
            b.iter(|| {
                let engine = ConfidenceEngine::new(method.clone())
                    .with_budget(budget.clone())
                    .with_shared_cache(Arc::new(SubformulaCache::new()));
                engine
                    .confidence_batch(lineages, space, Some(origins))
                    .results
                    .iter()
                    .map(|r| r.estimate)
                    .sum::<f64>()
            })
        });

        // Warm: steady-state repeated batch over one long-lived cache.
        group.bench_with_input(BenchmarkId::new("warm", name), &lineages, |b, lineages| {
            let engine = ConfidenceEngine::new(method.clone())
                .with_budget(budget.clone())
                .with_shared_cache(Arc::new(SubformulaCache::new()));
            let _ = engine.confidence_batch(lineages, space, Some(origins));
            b.iter(|| {
                engine
                    .confidence_batch(lineages, space, Some(origins))
                    .results
                    .iter()
                    .map(|r| r.estimate)
                    .sum::<f64>()
            })
        });

        // Warm but memory-capped: constant eviction churn.
        group.bench_with_input(BenchmarkId::new("warm_bounded", name), &lineages, |b, lineages| {
            let engine = ConfidenceEngine::new(method.clone())
                .with_budget(budget.clone())
                .with_shared_cache(Arc::new(SubformulaCache::with_capacity(512)));
            let _ = engine.confidence_batch(lineages, space, Some(origins));
            b.iter(|| {
                engine
                    .confidence_batch(lineages, space, Some(origins))
                    .results
                    .iter()
                    .map(|r| r.estimate)
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_reuse);
criterion_main!(benches);
