//! Criterion bench for the arena-interned lineage representation: micro
//! benches of the decomposition operators (cofactor, component split,
//! canonical hash) on both representations, plus the fig8 random-graph
//! end-to-end compile that gates the arena's ≥ 1.5× acceptance target and
//! writes the `BENCH_decomp.json` trajectory record.
//!
//! Legacy = the pre-arena owned-`Dnf` path preserved in
//! [`dtree::reference`]; arena = the production [`events::LineageArena`] /
//! [`events::DnfView`] path. Both are bit-identical (asserted before any
//! timing), so every series measures representation cost only.
//!
//! Set `DECOMPOSITION_SMOKE=1` to run the end-to-end comparison at smoke
//! scale (what CI's quickstart job does): a smaller graph, fewer reps, and a
//! regression floor of 1.0× instead of the full 1.5× acceptance gate.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use events::{Clause, Dnf, LineageArena, ProbabilitySpace, VarId};

/// A dense random DNF (fixed seed) exercising all decomposition operators:
/// several independent clusters of overlapping clauses.
fn micro_formula() -> (ProbabilitySpace, Dnf) {
    let mut space = ProbabilitySpace::new();
    let vars: Vec<VarId> =
        (0..60).map(|i| space.add_bool(format!("x{i}"), 0.1 + 0.012 * (i as f64 % 60.0))).collect();
    // Three clusters of 20 variables; clauses stay inside their cluster so
    // the component split is non-trivial.
    let mut state = 0x5eed_cafe_u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let clauses: Vec<Clause> = (0..120)
        .map(|i| {
            let cluster = (i % 3) * 20;
            let width = 2 + (rng() % 3) as usize;
            Clause::from_bools(
                &(0..width).map(|_| vars[cluster + (rng() % 20) as usize]).collect::<Vec<_>>(),
            )
        })
        .collect();
    (space, Dnf::from_clauses(clauses))
}

fn bench_decomposition(c: &mut Criterion) {
    // The end-to-end gate runs first (untimed by criterion; it manages its
    // own repetitions) and writes the trajectory records.
    let smoke = std::env::var_os("DECOMPOSITION_SMOKE").is_some();
    let floor = if smoke { 1.0 } else { 1.5 };
    let records = bench::decomposition_records(smoke, Some(floor));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decomp.json");
    if let Err(e) = bench::write_json(&path, &records) {
        obs::warn("bench.report", &format!("could not write {}: {e}", path.display()));
    }

    let (space, dnf) = micro_formula();
    let mut arena = LineageArena::new();
    let root = arena.intern(&dnf);
    let var = dnf.most_frequent_var().expect("non-empty formula");

    let mut group = c.benchmark_group("decomposition");
    group.sample_size(50);
    group.measurement_time(Duration::from_secs(2));

    // Shannon cofactor: owned re-materialisation vs index filtering + pooled
    // compaction (steady state: repeated cofactors dedup onto existing ids).
    group.bench_with_input(BenchmarkId::new("cofactor", "owned"), &dnf, |b, dnf| {
        b.iter(|| dnf.cofactor(var, 1).len())
    });
    group.bench_with_input(BenchmarkId::new("cofactor", "arena"), &root, |b, root| {
        b.iter(|| root.cofactor(&mut arena, var, 1).len())
    });

    // Independent-component split.
    group.bench_with_input(BenchmarkId::new("components", "owned"), &dnf, |b, dnf| {
        b.iter(|| dnf.independent_components().len())
    });
    group.bench_with_input(BenchmarkId::new("components", "arena"), &root, |b, root| {
        b.iter(|| root.independent_components(&arena).len())
    });

    // Canonical hash: full atom walk vs incremental combine of interned
    // per-clause fingerprints.
    group.bench_with_input(BenchmarkId::new("hash", "owned"), &dnf, |b, dnf| {
        b.iter(|| dnf.canonical_hash().to_u128())
    });
    group.bench_with_input(BenchmarkId::new("hash", "arena"), &root, |b, root| {
        b.iter(|| root.hash(&arena).to_u128())
    });

    // Bucket bounds over both representations (shared algorithm, different
    // accessors).
    group.bench_with_input(BenchmarkId::new("bounds", "owned"), &dnf, |b, dnf| {
        b.iter(|| dtree::dnf_bounds(dnf, &space).width())
    });
    group.bench_with_input(BenchmarkId::new("bounds", "arena"), &root, |b, root| {
        b.iter(|| dtree::dnf_bounds_view(&arena, root, &space).width())
    });
    group.finish();
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
