//! Criterion bench for the resumable anytime refinement
//! (`dtree::ResumableCompilation`): on the fig7 #P-hard TPC-H suite, a split
//! budget spent through `resume()` must reach a strictly tighter mean
//! interval width than spending the same total budget as independent
//! rerun-from-scratch slices — the restart regime the cluster scheduler's
//! refinement rounds used before frontiers persisted.
//!
//! The comparison is budget-bound, so it runs *once* at startup (untimed by
//! criterion), prints per-item widths, asserts the acceptance gate, and
//! writes the `BENCH_resume.json` trajectory records (with the
//! `mean_interval_width` field carrying the tracked quantity). A small
//! criterion group then times the suspend/resume machinery itself.
//!
//! Set `RESUME_SMOKE=1` for CI smoke scale: one scale factor, shorter
//! slices, a non-strict (≤) gate so noisy boxes cannot flake the job, and no
//! `BENCH_resume.json` write (smoke numbers are not trajectory-comparable).

use std::time::Duration;

use bench::{tpch_database, BenchRecord};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb::confidence::{confidence_resumable, confidence_with, ConfidenceBudget, ConfidenceMethod};
use workloads::tpch::TpchQuery;

/// One arm's outcome on one lineage: the final interval width, the total
/// wall-clock across its slices, and whether it converged.
struct ArmOutcome {
    width: f64,
    seconds: f64,
    converged: bool,
}

/// Width-vs-cumulative-budget experiment over the fig7 hard queries.
///
/// Both arms get `slices × slice` of wall clock per lineage with the ε = 0
/// d-tree method (never converges early on these #P-hard lineages, so the
/// whole budget goes into tightening):
///
/// * **rerun** — each slice recompiles from scratch (the pre-resume regime);
///   the reported interval is the tightest any single slice reached.
/// * **resume** — the first slice captures a `ResumableCompilation` frontier
///   and every further slice resumes it, so tightening accumulates.
fn split_budget_experiment(smoke: bool) {
    let slices = 4usize;
    let slice = if smoke { Duration::from_millis(2) } else { Duration::from_millis(5) };
    let scale_factors: &[f64] = if smoke { &[0.005] } else { &[0.005, 0.02] };
    let method = ConfidenceMethod::DTreeExact;
    let budget = ConfidenceBudget { timeout: Some(slice), max_work: None };

    println!(
        "== resume vs rerun, fig7 hard suite ({slices}x{:?} split budget{}) ==",
        slice,
        if smoke { ", smoke" } else { "" }
    );
    let mut records = Vec::new();
    let mut resume_widths = Vec::new();
    let mut rerun_widths = Vec::new();
    for &sf in scale_factors {
        let db = tpch_database(sf, false);
        let space = db.database().space();
        let origins = db.database().origins();
        for query in TpchQuery::hard() {
            let lineage = db.boolean_lineage(&query);
            let item = format!("{}_sf{sf}", query.name());

            let rerun = {
                let mut best_width = 1.0f64;
                let mut seconds = 0.0;
                let mut converged = false;
                for _ in 0..slices {
                    let r = confidence_with(
                        &lineage,
                        space,
                        Some(origins),
                        &method,
                        &budget,
                        None,
                        None,
                    );
                    best_width = best_width.min(r.upper - r.lower);
                    seconds += r.elapsed.as_secs_f64();
                    converged |= r.converged;
                }
                ArmOutcome { width: best_width, seconds, converged }
            };

            let resume = {
                let (first, handle) = confidence_resumable(
                    &lineage,
                    space,
                    Some(origins),
                    &method,
                    &budget,
                    None,
                    None,
                );
                let mut width = first.upper - first.lower;
                let mut seconds = first.elapsed.as_secs_f64();
                let mut converged = first.converged;
                if let Some(mut handle) = handle {
                    for _ in 1..slices {
                        if handle.is_converged() {
                            break;
                        }
                        let r = handle.resume(space, &budget, None);
                        width = r.upper - r.lower;
                        seconds += r.elapsed.as_secs_f64();
                        converged |= r.converged;
                    }
                }
                ArmOutcome { width, seconds, converged }
            };

            println!(
                "  {item:<12} rerun width {:<12.6} resume width {:<12.6}",
                rerun.width, resume.width
            );
            assert!(
                resume.width <= rerun.width + 1e-12,
                "{item}: resumed width {} must never exceed the rerun width {}",
                resume.width,
                rerun.width
            );
            for (arm, out) in [("rerun", &rerun), ("resume", &resume)] {
                records.push(
                    BenchRecord {
                        name: format!("resume/{item}/{arm}"),
                        p50_seconds: out.seconds,
                        converged_fraction: f64::from(out.converged),
                        samples: slices,
                        mean_interval_width: None,
                        tuples_per_second: None,
                        p50_refresh_seconds: None,
                        rss_peak_bytes: None,
                        degraded_fraction: None,
                    }
                    .with_mean_interval_width(out.width),
                );
            }
            rerun_widths.push(rerun.width);
            resume_widths.push(resume.width);
        }
    }

    let mean = |ws: &[f64]| ws.iter().sum::<f64>() / ws.len() as f64;
    let rerun_mean = mean(&rerun_widths);
    let resume_mean = mean(&resume_widths);
    println!("  suite mean   rerun {rerun_mean:.6}  resume {resume_mean:.6}");
    for (arm, width) in [("rerun", rerun_mean), ("resume", resume_mean)] {
        records.push(
            BenchRecord {
                name: format!("resume/suite/{arm}"),
                p50_seconds: 0.0,
                converged_fraction: 1.0,
                samples: rerun_widths.len(),
                mean_interval_width: None,
                tuples_per_second: None,
                p50_refresh_seconds: None,
                rss_peak_bytes: None,
                degraded_fraction: None,
            }
            .with_mean_interval_width(width),
        );
    }
    if smoke {
        // Tiny smoke lineages can converge inside one slice, where both arms
        // tie at width 0; only the no-regression direction is gated.
        assert!(
            resume_mean <= rerun_mean + 1e-12,
            "resumed mean width {resume_mean} regressed past the rerun mean {rerun_mean}"
        );
    } else {
        assert!(
            resume_mean < rerun_mean,
            "resumed refinement must reach a strictly tighter mean interval width than \
             rerun-from-scratch at equal total budget ({resume_mean} vs {rerun_mean})"
        );
    }

    // Smoke runs skip the trajectory write: smoke-scale numbers are not
    // comparable to the committed full-scale history.
    if smoke {
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_resume.json");
    if let Err(e) = bench::write_json(&path, &records) {
        obs::warn("bench.report", &format!("could not write {}: {e}", path.display()));
    }
}

fn bench_resume_refinement(c: &mut Criterion) {
    let smoke = std::env::var_os("RESUME_SMOKE").is_some();
    split_budget_experiment(smoke);

    // Micro series: the cost of one suspend (truncated run + frontier
    // capture) and of one resumed slice, on a single mid-size hard lineage.
    let db = tpch_database(0.005, false);
    let space = db.database().space();
    let origins = db.database().origins();
    let lineage = db.boolean_lineage(&TpchQuery::B9);
    let method = ConfidenceMethod::DTreeExact;
    let slice = ConfidenceBudget { timeout: None, max_work: Some(64) };

    let mut group = c.benchmark_group("resume_refinement");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke { 1 } else { 2 }));
    group.bench_with_input(BenchmarkId::new("suspend", "B9_sf0.005"), &lineage, |b, lineage| {
        b.iter(|| {
            let (r, handle) =
                confidence_resumable(lineage, space, Some(origins), &method, &slice, None, None);
            assert!(handle.is_some(), "64 steps must truncate B9");
            r.upper - r.lower
        })
    });
    group.bench_with_input(
        BenchmarkId::new("resume_slice", "B9_sf0.005"),
        &lineage,
        |b, lineage| {
            let (_, handle) =
                confidence_resumable(lineage, space, Some(origins), &method, &slice, None, None);
            let handle = handle.expect("64 steps must truncate B9");
            b.iter(|| {
                // Clone the suspended handle so every iteration resumes the same
                // frontier state rather than compounding refinement.
                let mut h = handle.clone();
                let r = h.resume(space, &slice, None);
                r.upper - r.lower
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_resume_refinement);
criterion_main!(benches);
