//! Ablation bench: variable-elimination orders for the exact d-tree
//! evaluation (Section IV / Section VI-B).
//!
//! Compares, on IQ-query lineage and on hierarchical lineage,
//!
//! * `MostFrequent` — the paper's fallback heuristic (choose a variable
//!   occurring most often in the DNF),
//! * `IqThenFrequent` — try the IQ elimination order of Lemma 6.8 first
//!   (requires variable origins), which is what makes IQ queries tractable.

use std::time::Duration;

use bench::tpch_database;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtree::{exact_probability, CompileOptions, VarOrder};
use workloads::tpch::TpchQuery;

fn bench_var_order(c: &mut Criterion) {
    let db = tpch_database(0.02, false);
    let mut group = c.benchmark_group("ablation_var_order");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));

    for q in [TpchQuery::IqB1, TpchQuery::Iq6, TpchQuery::B17, TpchQuery::B2] {
        let answers = db.answers(&q);
        let configs = [
            (
                "most_frequent",
                CompileOptions {
                    var_order: VarOrder::MostFrequent,
                    origins: None,
                    max_depth: None,
                },
            ),
            ("iq_then_frequent", CompileOptions::with_origins(db.database().origins().clone())),
        ];
        for (name, opts) in configs {
            group.bench_with_input(BenchmarkId::new(name, q.name()), &answers, |b, answers| {
                b.iter(|| {
                    answers
                        .iter()
                        .map(|a| {
                            exact_probability(&a.lineage, db.database().space(), &opts).probability
                        })
                        .sum::<f64>()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_var_order);
criterion_main!(benches);
