//! Criterion micro-bench for the observability layer's no-op cost: the same
//! engine batch with no registry attached (the pre-obs hot path), with the
//! default disabled `Obs` attached explicitly, and with a live enabled
//! registry. The acceptance target is disabled-within-noise of baseline —
//! every handle is an `Option<Arc<..>>` that short-circuits on `None`, so
//! the disabled rows measure a handful of branch-not-taken checks per item.
//!
//! Results are asserted bit-identical across all three series at startup
//! (the differential guarantee the `obs_differential` proptests pin down at
//! full scale).
//!
//! Set `OBS_SMOKE=1` for CI smoke scale: tiny workload, short measurement.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obs::Obs;
use pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
use pdb::ConfidenceEngine;
use workloads::{random_graph, s2_relation, RandomGraphConfig};

fn bench_obs_overhead(c: &mut Criterion) {
    let smoke = std::env::var_os("OBS_SMOKE").is_some();
    let nodes = if smoke { 10 } else { 18 };
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(10)), max_work: None };
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(nodes, 0.4));
    let lineages = s2_relation(&graph, nodes);
    let space = db.space();
    let origins = db.origins();
    let method = ConfidenceMethod::DTreeAbsolute(0.01);

    let engine = |obs: Option<&Obs>| {
        let e = ConfidenceEngine::new(method.clone()).with_budget(budget.clone());
        match obs {
            Some(o) => e.with_obs(o),
            None => e,
        }
    };

    // The differential guarantee at bench scale: all three wirings produce
    // bit-identical estimates and bounds.
    let disabled = Obs::default();
    let enabled = Obs::enabled();
    let base = engine(None).confidence_batch(&lineages, space, Some(origins));
    for obs in [&disabled, &enabled] {
        let got = engine(Some(obs)).confidence_batch(&lineages, space, Some(origins));
        for (a, b) in base.results.iter().zip(&got.results) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(a.lower.to_bits(), b.lower.to_bits());
            assert_eq!(a.upper.to_bits(), b.upper.to_bits());
        }
    }

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke { 1 } else { 3 }));
    let series: [(&str, Option<&Obs>); 3] =
        [("baseline", None), ("disabled", Some(&disabled)), ("enabled", Some(&enabled))];
    for (name, obs) in series {
        group.bench_with_input(BenchmarkId::new(name, "graph_s2_abs0.01"), &lineages, |b, l| {
            let engine = engine(obs);
            b.iter(|| {
                engine
                    .confidence_batch(l, space, Some(origins))
                    .results
                    .iter()
                    .map(|r| r.estimate)
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
