//! Criterion bench for Figure 7: the #P-hard Boolean TPC-H queries B2, B9,
//! B20, B21 at two scale factors, d-tree approximation vs the Karp-Luby
//! baseline.

use std::time::Duration;

use bench::tpch_database;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb::confidence::{confidence, ConfidenceBudget, ConfidenceMethod};
use workloads::tpch::TpchQuery;

fn bench_hard(c: &mut Criterion) {
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(1)), max_work: None };
    let methods = [
        ("dtree_rel_0.01", ConfidenceMethod::DTreeRelative(0.01)),
        ("dtree_rel_0.05", ConfidenceMethod::DTreeRelative(0.05)),
        ("aconf_0.05", ConfidenceMethod::KarpLuby { epsilon: 0.05, delta: 1e-4 }),
    ];

    let mut group = c.benchmark_group("fig7_hard_tpch");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for &sf in &[0.005_f64, 0.02] {
        let db = tpch_database(sf, false);
        for query in TpchQuery::hard() {
            let lineage = db.boolean_lineage(&query);
            for (name, method) in &methods {
                group.bench_with_input(
                    BenchmarkId::new(*name, format!("{}_sf{}", query.name(), sf)),
                    &lineage,
                    |b, lineage| {
                        b.iter(|| {
                            confidence(
                                lineage,
                                db.database().space(),
                                Some(db.database().origins()),
                                method,
                                &budget,
                            )
                            .estimate
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hard);
criterion_main!(benches);
