//! Criterion bench for **streaming confidence maintenance**: on a
//! [`workloads::StreamingWorkload`] of growing answer lineages, refreshing
//! confidences through `pdb::ConfidenceEngine::maintain_batch` (pooled
//! d-tree frontiers absorbing [`events::LineageDelta`]s) must reach at least
//! a 3× lower per-round refresh latency than recompiling every answer from
//! scratch at the same budget — the delta-aware compilation win this
//! codebase's streaming layer exists for.
//!
//! The comparison is round-structured, so it runs once at startup (untimed
//! by criterion), prints per-round latencies, asserts the acceptance gate,
//! and writes the `BENCH_streaming.json` trajectory records with the
//! `tuples_per_second` and `p50_refresh_seconds` fields carrying the
//! streaming quantities. A small criterion group then times one maintenance
//! round against one recompile round.
//!
//! Set `STREAMING_SMOKE=1` for CI smoke scale: tiny lineages and few rounds,
//! correctness + frontier-reuse gates only (no latency ratio — smoke-scale
//! rounds are microseconds and noisy), and no `BENCH_streaming.json` write
//! (smoke numbers are not trajectory-comparable).

use std::time::{Duration, Instant};

use bench::BenchRecord;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
use pdb::{ConfidenceEngine, ResumablePool};
use workloads::{StreamingConfig, StreamingWorkload};

fn config(smoke: bool) -> (StreamingConfig, usize) {
    if smoke {
        (
            StreamingConfig {
                answers: 3,
                initial_clauses: 40,
                clause_width: 2,
                appends_per_round: 2,
                touched_per_round: 2,
                seed: 11,
            },
            3,
        )
    } else {
        (
            StreamingConfig {
                answers: 8,
                initial_clauses: 240,
                clause_width: 2,
                appends_per_round: 2,
                touched_per_round: 2,
                seed: 11,
            },
            8,
        )
    }
}

/// Seeds the pool with every answer's d-tree frontier: a *budgeted* first
/// pass (only the anytime d-tree path hands back resumable handles —
/// settled if it converged, open if it truncated) followed by an unbudgeted
/// convergence pass, so measured rounds start from the steady streaming
/// state: fully refined frontiers waiting for deltas.
fn seed_pool(w: &StreamingWorkload, engine: &ConfidenceEngine) -> ResumablePool {
    let mut pool = ResumablePool::new(w.lineages().len());
    let trickle = ConfidenceEngine::new(ConfidenceMethod::DTreeExact)
        .with_threads(1)
        .with_budget(ConfidenceBudget { timeout: None, max_work: Some(2) });
    let none: Vec<Option<events::LineageDelta>> = vec![None; w.lineages().len()];
    trickle.maintain_batch(w.lineages(), &none, w.space(), None, &mut pool);
    assert_eq!(
        pool.len(),
        w.lineages().len(),
        "the budgeted first pass must pool one frontier per answer"
    );
    engine.maintain_batch(w.lineages(), &none, w.space(), None, &mut pool);
    pool
}

/// The round-structured incremental-vs-recompile experiment. Returns the
/// workload, pool, and engine in their post-experiment state so the
/// criterion group can time one further round on real steady-state data.
fn streaming_experiment(smoke: bool) -> (StreamingWorkload, ResumablePool, ConfidenceEngine) {
    let (cfg, rounds) = config(smoke);
    let mut w = StreamingWorkload::new(cfg);
    let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeExact).with_threads(1);
    let mut pool = seed_pool(&w, &engine);

    println!(
        "== streaming maintenance vs recompile ({} answers, {rounds} rounds{}) ==",
        w.lineages().len(),
        if smoke { ", smoke" } else { "" }
    );
    let mut incremental_walls = Vec::with_capacity(rounds);
    let mut recompile_walls = Vec::with_capacity(rounds);
    let mut refresh_latencies = Vec::with_capacity(rounds);
    let mut tuples = 0usize;
    let mut all_converged = true;
    for round in 0..rounds {
        let deltas = w.next_round();
        tuples += deltas.iter().flatten().map(|d| d.clauses().len()).sum::<usize>();

        let t0 = Instant::now();
        let maintained = engine.maintain_batch(w.lineages(), &deltas, w.space(), None, &mut pool);
        let incremental = t0.elapsed();

        let t0 = Instant::now();
        let scratch = engine.confidence_batch(w.lineages(), w.space(), None);
        let recompile = t0.elapsed();

        assert_eq!(
            maintained.recompiled, 0,
            "round {round}: every answer must reuse its pooled frontier"
        );
        assert!(maintained.refreshed > 0, "round {round}: deltas must dirty some frontier");
        for (m, s) in maintained.results.iter().zip(&scratch.results) {
            assert!(
                (m.estimate - s.estimate).abs() < 1e-9,
                "round {round}: maintained {} vs recompiled {}",
                m.estimate,
                s.estimate
            );
        }
        all_converged &= maintained.all_converged() && scratch.all_converged();
        println!(
            "  round {round}: incremental {:>10.1?} (refreshed {}, snapshots {})  recompile {:>10.1?}",
            incremental, maintained.refreshed, maintained.snapshots, recompile
        );
        incremental_walls.push(incremental.as_secs_f64());
        recompile_walls.push(recompile.as_secs_f64());
        refresh_latencies.push(
            incremental.as_secs_f64() / (maintained.refreshed + maintained.recompiled) as f64,
        );
    }

    let p50 = |xs: &[f64]| {
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));
        s[s.len() / 2]
    };
    let incremental_p50 = p50(&incremental_walls);
    let recompile_p50 = p50(&recompile_walls);
    let incremental_total: f64 = incremental_walls.iter().sum();
    let recompile_total: f64 = recompile_walls.iter().sum();
    let tps = tuples as f64 / incremental_total;
    println!(
        "  p50 per round: incremental {incremental_p50:.6}s  recompile {recompile_p50:.6}s  \
         ({:.1}x, {tps:.0} tuples/s)",
        recompile_p50 / incremental_p50
    );

    if !smoke {
        assert!(
            recompile_p50 >= 3.0 * incremental_p50,
            "delta-aware maintenance must refresh at least 3x faster than recompilation \
             at equal budget (incremental p50 {incremental_p50}s vs recompile p50 {recompile_p50}s)"
        );
        let converged_fraction = f64::from(all_converged);
        let records = vec![
            BenchRecord {
                name: "streaming/refresh/incremental".into(),
                p50_seconds: incremental_p50,
                converged_fraction,
                samples: rounds,
                mean_interval_width: None,
                tuples_per_second: None,
                p50_refresh_seconds: None,
                rss_peak_bytes: None,
                degraded_fraction: None,
            }
            .with_tuples_per_second(tps)
            .with_refresh_latency(p50(&refresh_latencies)),
            BenchRecord {
                name: "streaming/refresh/recompile".into(),
                p50_seconds: recompile_p50,
                converged_fraction,
                samples: rounds,
                mean_interval_width: None,
                tuples_per_second: None,
                p50_refresh_seconds: None,
                rss_peak_bytes: None,
                degraded_fraction: None,
            }
            .with_tuples_per_second(tuples as f64 / recompile_total)
            .with_refresh_latency(p50(&recompile_walls) / w.lineages().len() as f64),
        ];
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_streaming.json");
        if let Err(e) = bench::write_json(&path, &records) {
            obs::warn("bench.report", &format!("could not write {}: {e}", path.display()));
        }
    }
    (w, pool, engine)
}

fn bench_streaming(c: &mut Criterion) {
    let smoke = std::env::var_os("STREAMING_SMOKE").is_some();
    let (mut w, pool, engine) = streaming_experiment(smoke);

    // Micro series: one steady-state maintenance round (clone the pre-round
    // pool each iteration so every sample absorbs the same deltas) against
    // one recompile round on the same grown lineages.
    let deltas = w.next_round();
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke { 1 } else { 2 }));
    group.bench_with_input(BenchmarkId::new("maintain_round", "steady"), &deltas, |b, deltas| {
        b.iter(|| {
            let mut p = pool.clone();
            engine.maintain_batch(w.lineages(), deltas, w.space(), None, &mut p).results[0].estimate
        })
    });
    group.bench_with_input(BenchmarkId::new("recompile_round", "steady"), &(), |b, ()| {
        b.iter(|| engine.confidence_batch(w.lineages(), w.space(), None).results[0].estimate)
    });
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
