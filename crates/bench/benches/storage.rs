//! Criterion bench for the **disk-backed storage engine**: ingesting a
//! dataset several times larger than the memtable budget into a
//! [`pdb::Database::open_disk`] store must (a) spill to sorted runs —
//! flushes and compactions happen, the memtable stays within its byte
//! budget — and (b) stay **bit-identical** to the same workload held
//! entirely in memory: the streamed lineage scan and the exact confidence
//! over it match the heap database to the last bit.
//!
//! The experiment is phase-structured, so it runs once at startup (untimed
//! by criterion), prints throughput and memory numbers, asserts the gates,
//! and writes the `BENCH_storage.json` trajectory records — p50 scan
//! seconds, `tuples_per_second` for the ingest series, and
//! `rss_peak_bytes` (VmHWM from `/proc/self/status`, absent off Linux). A
//! small criterion group then times one lineage scan on each backend.
//!
//! Set `STORAGE_SMOKE=1` for CI smoke scale: a few thousand rows,
//! correctness gates only, and no `BENCH_storage.json` write (smoke numbers
//! are not trajectory-comparable).

use std::time::{Duration, Instant};

use bench::BenchRecord;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use events::LineageArena;
use pdb::confidence::{confidence_with, ConfidenceBudget, ConfidenceMethod};
use pdb::storage::testutil::TempDir;
use pdb::{Database, Value};

const TABLE: &str = "readings";

struct Scale {
    rows: usize,
    memtable_budget: usize,
    scan_passes: usize,
}

fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale { rows: 2_000, memtable_budget: 8 << 10, scan_passes: 3 }
    } else {
        Scale { rows: 24_000, memtable_budget: 64 << 10, scan_passes: 7 }
    }
}

/// Deterministic row stream (seeded xorshift; no external RNG so the bench
/// is reproducible byte for byte across runs and backends).
struct Rows {
    state: u64,
    next: usize,
    total: usize,
}

impl Rows {
    fn new(total: usize) -> Rows {
        Rows { state: 0x9e37_79b9_7f4a_7c15, next: 0, total }
    }
}

impl Iterator for Rows {
    type Item = (Vec<Value>, f64);

    fn next(&mut self) -> Option<(Vec<Value>, f64)> {
        if self.next == self.total {
            return None;
        }
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let i = self.next as i64;
        self.next += 1;
        let p = 0.1 + 0.8 * (self.state >> 11) as f64 / (1u64 << 53) as f64;
        Some((vec![Value::Int(i), Value::Int((self.state % 997) as i64)], p))
    }
}

/// Streams the row set into `db` through a [`pdb::TupleWriter`] (no
/// intermediate full-relation materialization) and returns the wall time.
fn ingest(db: &mut Database, rows: usize) -> Duration {
    let t0 = Instant::now();
    let mut writer = db.tuple_writer(TABLE, &["sensor", "reading"]);
    for (values, p) in Rows::new(rows) {
        writer.push(values, p);
    }
    t0.elapsed()
}

/// One measured pass: stream the table's clauses straight from storage into
/// a fresh arena and evaluate the exact confidence of the disjunction.
fn scan_and_confide(db: &Database) -> (f64, Duration) {
    let t0 = Instant::now();
    let mut arena = LineageArena::with_capacity(64, 2);
    let view = db.scan_boolean_lineage(TABLE, &mut arena);
    let lineage = view.to_dnf(&arena);
    let r = confidence_with(
        &lineage,
        db.space(),
        None,
        &ConfidenceMethod::DTreeExact,
        &ConfidenceBudget { timeout: None, max_work: None },
        None,
        None,
    );
    (r.estimate, t0.elapsed())
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); `None` on platforms without procfs.
fn rss_peak_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The phase-structured experiment. Returns both databases so the criterion
/// group can time scans on real post-compaction state.
fn storage_experiment(smoke: bool) -> (TempDir, Database, Database) {
    let s = scale(smoke);
    println!(
        "== disk-backed storage vs heap ({} rows, {} B memtable budget{}) ==",
        s.rows,
        s.memtable_budget,
        if smoke { ", smoke" } else { "" }
    );

    let mut heap = Database::new();
    let heap_wall = ingest(&mut heap, s.rows);

    let dir = TempDir::new("bench-storage");
    let mut disk = Database::open_disk(dir.path(), s.memtable_budget).expect("open disk store");
    let disk_wall = ingest(&mut disk, s.rows);
    let stats = disk.storage_stats();
    println!(
        "  ingest: heap {heap_wall:.1?}  disk {disk_wall:.1?}  \
         ({} flushes, {} compactions, {} runs, {} B memtable, {} B wal)",
        stats.flushes, stats.compactions, stats.runs, stats.memtable_bytes, stats.wal_bytes
    );

    // Out-of-core gates: the dataset must actually spill — several runs on
    // disk, the memtable within budget — or the bench is not measuring the
    // out-of-core path at all.
    assert!(stats.flushes > 0, "dataset must exceed the memtable budget");
    assert!(stats.runs > 0, "flushes must leave runs on disk");
    assert!(
        stats.memtable_bytes <= s.memtable_budget,
        "memtable {} B exceeds its {} B budget after ingest",
        stats.memtable_bytes,
        s.memtable_budget
    );

    // Bit-identity gate: the streamed scan over runs + memtable must produce
    // the same lineage and the same exact confidence as the heap store.
    let (heap_estimate, _) = scan_and_confide(&heap);
    let mut disk_walls = Vec::with_capacity(s.scan_passes);
    for _ in 0..s.scan_passes {
        let (disk_estimate, wall) = scan_and_confide(&disk);
        assert_eq!(
            disk_estimate.to_bits(),
            heap_estimate.to_bits(),
            "disk-backed confidence diverged from the heap store"
        );
        disk_walls.push(wall.as_secs_f64());
    }
    disk_walls.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));
    let scan_p50 = disk_walls[disk_walls.len() / 2];
    let tps = s.rows as f64 / disk_wall.as_secs_f64();
    let rss = rss_peak_bytes();
    println!(
        "  scan p50 {scan_p50:.6}s  ingest {tps:.0} tuples/s  peak rss {}",
        rss.map_or("n/a".to_owned(), |b| format!("{} MiB", b >> 20))
    );

    if !smoke {
        let attach_rss = |r: BenchRecord| match rss {
            Some(b) => r.with_rss_peak_bytes(b),
            None => r,
        };
        let records = vec![
            attach_rss(
                BenchRecord::from_samples(
                    "storage/ingest/disk",
                    &[(disk_wall.as_secs_f64(), true)],
                )
                .expect("one sample")
                .with_tuples_per_second(tps),
            ),
            attach_rss(
                BenchRecord::from_samples(
                    "storage/scan/disk",
                    &disk_walls.iter().map(|&w| (w, true)).collect::<Vec<_>>(),
                )
                .expect("scan samples"),
            ),
        ];
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_storage.json");
        if let Err(e) = bench::write_json(&path, &records) {
            obs::warn("bench.report", &format!("could not write {}: {e}", path.display()));
        }
    }
    (dir, heap, disk)
}

fn bench_storage(c: &mut Criterion) {
    let smoke = std::env::var_os("STORAGE_SMOKE").is_some();
    // `_dir` keeps the temp directory (and the disk store's files) alive for
    // the criterion group below.
    let (_dir, heap, disk) = storage_experiment(smoke);

    let mut group = c.benchmark_group("storage");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke { 1 } else { 2 }));
    group.bench_with_input(BenchmarkId::new("scan_lineage", "heap"), &(), |b, ()| {
        b.iter(|| scan_and_confide(&heap).0)
    });
    group.bench_with_input(BenchmarkId::new("scan_lineage", "disk"), &(), |b, ()| {
        b.iter(|| scan_and_confide(&disk).0)
    });
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
