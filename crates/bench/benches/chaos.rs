//! Chaos bench: the fig7 hard-query suite and the storage write path under
//! a 1% injected fault rate, pinning the graceful-degradation acceptance
//! criteria:
//!
//! 1. **Worker faults are absorbed, not surfaced.** The fig7 suite runs
//!    through the sharded cluster while 1% of worker item-executions panic.
//!    The retry-on-another-shard path must bring the converged fraction
//!    back to the fault-free run's, with non-degraded results bit-identical
//!    to it; the observed degraded fraction is recorded to
//!    `BENCH_chaos.json` (`degraded_fraction` field).
//! 2. **Transient storage errors are absorbed by retry.** A disk ingest of
//!    the same order of magnitude runs with 1% transient I/O errors on the
//!    WAL/flush sites under the default bounded-backoff retry policy: every
//!    append must be acknowledged and the recovered table bit-identical to
//!    a fault-free ingest.
//! 3. **Disabled failpoints are free.** Criterion series time the engine
//!    batch with no fault handle, a disabled handle, and an installed-but-
//!    empty plan; all three must be within noise (the timed analogue of the
//!    `fault_differential` bit-identity tests).
//!
//! Set `FAULTS_SMOKE=1` (CI) for smoke scale: one scale factor, fewer
//! repetitions, short measurement windows, and no `BENCH_chaos.json` write
//! (smoke numbers are not trajectory-comparable).

use std::time::Duration;

use bench::tpch_database;
use cluster::ClusterEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use events::Dnf;
use pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
use pdb::fault::{Fault, FaultPlan, FaultPolicy, RetryPolicy};
use pdb::storage::testutil::TempDir;
use pdb::storage::{DiskStore, TableStore};
use pdb::{AnnotatedTuple, ConfidenceEngine, Schema, Value};
use workloads::tpch::TpchQuery;
use workloads::{random_graph, s2_relation, RandomGraphConfig};

/// The injected fault rate of the chaos series.
const FAULT_RATE: f64 = 0.01;

/// The fig7 suite under 1% worker panics, repeated over distinct plan
/// seeds. Untimed by criterion — the per-item budget bounds the wall clock
/// — and reported to `BENCH_chaos.json` at full scale.
fn fig7_chaos_experiment(smoke: bool) -> Vec<bench::BenchRecord> {
    let sfs: &[f64] = if smoke { &[0.005] } else { &[0.005, 0.02] };
    let reps: u64 = if smoke { 3 } else { 25 };
    let method = ConfidenceMethod::DTreeRelative(0.05);
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(1)), max_work: None };

    let mut clean_samples: Vec<(f64, bool)> = Vec::new();
    let mut chaos_samples: Vec<(f64, bool)> = Vec::new();
    let mut degraded = 0u64;
    let mut total = 0u64;
    let mut injected = 0u64;

    for (sf_index, &sf) in sfs.iter().enumerate() {
        let db = tpch_database(sf, false);
        let lineages: Vec<Dnf> = TpchQuery::hard().iter().map(|q| db.boolean_lineage(q)).collect();
        let space = db.database().space();
        let origins = db.database().origins();

        let clean = ClusterEngine::new(method.clone())
            .with_shards(2)
            .with_budget(budget.clone())
            .confidence_batch(&lineages, space, Some(origins));
        for rep in 0..reps {
            // Each repetition replays the suite under a different seeded
            // fault schedule; within one seed the run is deterministic.
            let fault = FaultPlan::new(sf_index as u64 * 1000 + rep + 1)
                .on("cluster.worker", FaultPolicy::PanicWithProbability { p: FAULT_RATE })
                .build();
            let chaos = ClusterEngine::new(method.clone())
                .with_shards(2)
                .with_budget(budget.clone())
                .with_fault(&fault)
                .confidence_batch(&lineages, space, Some(origins));
            for (i, (got, want)) in chaos.results.iter().zip(&clean.results).enumerate() {
                total += 1;
                chaos_samples.push((got.elapsed.as_secs_f64(), got.converged));
                if rep == 0 {
                    clean_samples.push((want.elapsed.as_secs_f64(), want.converged));
                }
                if got.degraded.is_some() {
                    degraded += 1;
                } else {
                    // Survivors of the fault schedule are bit-identical to
                    // the fault-free run.
                    assert_eq!(
                        got.estimate.to_bits(),
                        want.estimate.to_bits(),
                        "sf {sf} item {i} diverged under faults"
                    );
                }
            }
            // The acceptance gate: one retry on another shard absorbs a 1%
            // worker-panic rate — the converged fraction matches fault-free.
            let clean_converged = clean.results.iter().filter(|r| r.converged).count();
            let chaos_converged = chaos.results.iter().filter(|r| r.converged).count();
            assert_eq!(
                chaos_converged,
                clean_converged,
                "sf {sf} rep {rep}: converged fraction under 1% worker faults must match \
                 the fault-free run ({} deaths, {} degraded)",
                chaos.total_deaths(),
                chaos.degraded_count()
            );
            injected += fault.injected();
        }
    }

    let degraded_fraction = degraded as f64 / total as f64;
    println!(
        "== chaos fig7: {} chaos samples, {injected} injected worker panics, degraded \
         fraction {degraded_fraction:.4} ==",
        chaos_samples.len()
    );
    let mut records = Vec::new();
    if let Some(r) = bench::BenchRecord::from_samples("chaos/fig7/fault-free", &clean_samples) {
        records.push(r.with_degraded_fraction(0.0));
    }
    if let Some(r) =
        bench::BenchRecord::from_samples("chaos/fig7/worker-faults-1pct", &chaos_samples)
    {
        records.push(r.with_degraded_fraction(degraded_fraction));
    }
    records
}

/// Disk ingest under 1% transient I/O errors with the default retry
/// policy: every append must be acknowledged, and the recovered table must
/// be bit-identical to a fault-free ingest.
fn storage_chaos_experiment(smoke: bool) -> Vec<bench::BenchRecord> {
    let rows: i64 = if smoke { 200 } else { 800 };
    let tuple =
        |i: i64| AnnotatedTuple::new(vec![Value::Int(i)], Dnf::literal(events::VarId(i as u32)));
    let ingest = |fault: Option<&Fault>| -> (Vec<AnnotatedTuple>, f64) {
        let dir = TempDir::new("chaos-storage");
        let start = std::time::Instant::now();
        {
            // A small budget forces flushes and rotations mid-ingest, so
            // the error sites on those paths are exercised too.
            let (mut store, _) = DiskStore::open(dir.path(), 4096).expect("open");
            store.create_table(Schema::new("S", &["a"]), 0).expect("create");
            store.set_retry(RetryPolicy::default());
            if let Some(f) = fault {
                store.attach_fault(f);
            }
            for i in 0..rows {
                store.append("S", &tuple(i)).expect(
                    "a 1% transient error rate must be absorbed by the bounded retry policy",
                );
            }
            store.flush_memtable().expect("final flush retried to completion");
        }
        let secs = start.elapsed().as_secs_f64();
        let (store, _) = DiskStore::open(dir.path(), 4096).expect("recover");
        (store.scan("S").map(|t| t.into_owned()).collect(), secs)
    };

    let fault = FaultPlan::new(17)
        .on("wal.append", FaultPolicy::ErrorWithProbability { p: FAULT_RATE })
        .on("wal.sync", FaultPolicy::ErrorWithProbability { p: FAULT_RATE })
        .on("storage.flush", FaultPolicy::ErrorWithProbability { p: FAULT_RATE })
        .on("storage.rotate", FaultPolicy::ErrorWithProbability { p: FAULT_RATE })
        .build();
    let (clean_rows, _) = ingest(None);
    let (chaos_rows, secs) = ingest(Some(&fault));
    assert!(fault.injected() > 0, "the schedule must actually inject something");
    assert_eq!(clean_rows, chaos_rows, "recovered table diverged under retried faults");
    println!(
        "== chaos storage: {rows} appends, {} injected faults absorbed, zero loss ==",
        fault.injected()
    );
    bench::BenchRecord::from_samples("chaos/storage/ingest-errors-1pct-retry", &[(secs, true)])
        .map(|r| r.with_degraded_fraction(0.0))
        .into_iter()
        .collect()
}

fn bench_chaos(c: &mut Criterion) {
    let smoke = std::env::var_os("FAULTS_SMOKE").is_some();
    let mut records = fig7_chaos_experiment(smoke);
    records.extend(storage_chaos_experiment(smoke));
    // Write the trajectory rows at the workspace root (stable regardless of
    // the invoking directory), where they are committed as perf history.
    // Smoke runs skip the write: their scale is not the committed one.
    if !smoke {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_chaos.json");
        if let Err(e) = bench::write_json(&path, &records) {
            obs::warn("bench.report", &format!("could not write {}: {e}", path.display()));
        }
    }

    // Timed series: the per-item failpoint check must be free when no plan
    // is installed — no handle, a disabled handle, and an installed-but-
    // empty plan all within noise.
    let nodes = if smoke { 10 } else { 18 };
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(10)), max_work: None };
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(nodes, 0.4));
    let lineages = s2_relation(&graph, nodes);
    let space = db.space();
    let origins = db.origins();
    let method = ConfidenceMethod::DTreeAbsolute(0.01);

    let disabled = Fault::disabled();
    let empty_plan = FaultPlan::new(1).build();
    let engine = |fault: Option<&Fault>| {
        let e = ConfidenceEngine::new(method.clone()).with_budget(budget.clone());
        match fault {
            Some(f) => e.with_fault(f),
            None => e,
        }
    };

    let mut group = c.benchmark_group("chaos");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke { 1 } else { 3 }));
    let series: [(&str, Option<&Fault>); 3] =
        [("no-handle", None), ("disabled", Some(&disabled)), ("empty-plan", Some(&empty_plan))];
    for (name, fault) in series {
        group.bench_with_input(BenchmarkId::new(name, "graph_s2_abs0.01"), &lineages, |b, l| {
            let engine = engine(fault);
            b.iter(|| {
                engine
                    .confidence_batch(l, space, Some(origins))
                    .results
                    .iter()
                    .map(|r| r.estimate)
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);
