//! Criterion bench for the batched [`ConfidenceEngine`]: whole-query
//! confidence computation (all answer tuples) batched with a shared
//! sub-formula cache and parallel lineage evaluation, against the
//! one-at-a-time `confidence()` loop the harness used before.
//!
//! Workloads (d-tree absolute ε = 0.01 throughout):
//!
//! * `fig9_motifs` — the four Figure-9 motif lineages (t, p2, p3, s2) on
//!   Zachary's karate club, batched per network. The per-lineage costs are
//!   wildly uneven (p3 dominates), so the parallel engine approaches
//!   max-instead-of-sum on multi-core machines.
//! * `fig9_s2_relation` — the full answer relation of the two-degrees query
//!   `s2(X, Y)` on the karate club: one lineage per ordered node pair.
//!   Symmetric answers have identical lineage, so the shared cache serves
//!   half the batch from memory.
//! * `graph_s2_relation` — the same relation on a denser uniform random
//!   graph (n = 24, p = 0.4), where per-lineage work is big enough for the
//!   cache to show a clear single-thread win.
//! * `tpch_iq6` — the TPC-H IQ6 inequality-join query, one lineage per
//!   quantity group.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use events::Dnf;
use pdb::confidence::{confidence, ConfidenceBudget, ConfidenceMethod};
use pdb::{ConfidenceEngine, Database};
use workloads::tpch::{TpchConfig, TpchDatabase, TpchQuery};
use workloads::{karate_club, random_graph, s2_relation, RandomGraphConfig, SocialNetworkConfig};

const METHOD: ConfidenceMethod = ConfidenceMethod::DTreeAbsolute(0.01);

fn bench_batch_engine(c: &mut Criterion) {
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(10)), max_work: None };

    let net = karate_club(&SocialNetworkConfig::karate_default());
    let (s, t) = net.separation_pair();
    let motif_lineages = vec![
        net.graph.triangle_lineage(),
        net.graph.path2_lineage(),
        net.graph.path3_lineage(),
        net.graph.separation2_lineage(s, t),
    ];
    let karate_s2 = s2_relation(&net.graph, net.num_nodes);

    let (rand_db, rand_graph) = random_graph(&RandomGraphConfig::uniform(24, 0.4));
    let rand_s2 = s2_relation(&rand_graph, 24);

    let tpch = TpchDatabase::generate(&TpchConfig::new(0.05));
    let tpch_lineages: Vec<Dnf> =
        tpch.answers(&TpchQuery::Iq6).into_iter().map(|a| a.lineage).collect();

    let batches: Vec<(&str, &Database, Vec<Dnf>)> = vec![
        ("fig9_motifs", &net.db, motif_lineages),
        ("fig9_s2_relation", &net.db, karate_s2),
        ("graph_s2_relation", &rand_db, rand_s2),
        ("tpch_iq6", tpch.database(), tpch_lineages),
    ];

    let mut group = c.benchmark_group("batch_engine");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (name, db, lineages) in &batches {
        let space = db.space();
        let origins = db.origins();

        // Baseline: the pre-engine harness loop, one confidence() per
        // lineage, no sharing.
        group.bench_with_input(
            BenchmarkId::new("per_lineage_loop", name),
            lineages,
            |b, lineages| {
                b.iter(|| {
                    lineages
                        .iter()
                        .map(|l| confidence(l, space, Some(origins), &METHOD, &budget).estimate)
                        .sum::<f64>()
                })
            },
        );

        // Batched, sequential: isolates the shared-cache effect.
        group.bench_with_input(
            BenchmarkId::new("engine_1_thread", name),
            lineages,
            |b, lineages| {
                let engine =
                    ConfidenceEngine::new(METHOD).with_budget(budget.clone()).with_threads(1);
                b.iter(|| {
                    engine
                        .confidence_batch(lineages, space, Some(origins))
                        .results
                        .iter()
                        .map(|r| r.estimate)
                        .sum::<f64>()
                })
            },
        );

        // Batched, parallel: cache sharing plus one thread per CPU.
        group.bench_with_input(
            BenchmarkId::new("engine_parallel", name),
            lineages,
            |b, lineages| {
                let engine = ConfidenceEngine::new(METHOD).with_budget(budget.clone());
                b.iter(|| {
                    engine
                        .confidence_batch(lineages, space, Some(origins))
                        .results
                        .iter()
                        .map(|r| r.estimate)
                        .sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_engine);
criterion_main!(benches);
