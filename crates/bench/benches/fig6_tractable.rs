//! Criterion bench for Figure 6 (a)/(b): tractable (hierarchical) TPC-H
//! queries. Compares d-tree exact, d-tree relative 0.01, the Karp-Luby
//! `aconf` baseline, and the SPROUT exact operator.

use std::time::Duration;

use bench::tpch_database;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb::confidence::{confidence, ConfidenceBudget, ConfidenceMethod};
use workloads::tpch::TpchQuery;

fn bench_tractable(c: &mut Criterion) {
    let db = tpch_database(0.01, false);
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(1)), max_work: None };
    let methods = [
        ("dtree_exact", ConfidenceMethod::DTreeExact),
        ("dtree_rel_0.01", ConfidenceMethod::DTreeRelative(0.01)),
        ("aconf_0.05", ConfidenceMethod::KarpLuby { epsilon: 0.05, delta: 1e-4 }),
    ];

    let mut group = c.benchmark_group("fig6_tractable_tpch");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for query in TpchQuery::tractable() {
        let answers = db.answers(&query);
        for (name, method) in &methods {
            group.bench_with_input(
                BenchmarkId::new(*name, query.name()),
                &answers,
                |b, answers| {
                    b.iter(|| {
                        let mut total = 0.0;
                        for a in answers {
                            let r = confidence(
                                &a.lineage,
                                db.database().space(),
                                Some(db.database().origins()),
                                method,
                                &budget,
                            );
                            total += r.estimate;
                        }
                        total
                    })
                },
            );
        }
        // SPROUT operates on the query rather than on the lineage.
        let cq = query.query();
        group.bench_with_input(BenchmarkId::new("sprout", query.name()), &cq, |b, cq| {
            b.iter(|| pdb::sprout::answer_confidences(cq, db.database()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tractable);
criterion_main!(benches);
