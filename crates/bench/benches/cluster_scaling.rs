//! Criterion bench for the sharded confidence cluster (`crates/cluster`).
//!
//! Two questions, matching the acceptance criteria of the cluster work:
//!
//! 1. **Does hardness-aware scheduling help under a tight deadline?** On a
//!    skewed `hardness_mix` batch with a deadline far below the stragglers'
//!    needs, hardest-first scheduling must converge at least as many items
//!    as naive input order (and on multicore hosts typically more, because
//!    stragglers start while parallel capacity is free). This comparison is
//!    deadline-bound, so it is run *once* at startup (not under criterion
//!    timing) and reported to stdout plus machine-readably to
//!    `BENCH_cluster.json` as `(name, p50 time, converged fraction)` rows.
//!
//! 2. **Does sharding cost anything when it is not needed?** The
//!    `warm_cache` series time a repeated batch (fig8 `s2` answer relation,
//!    warm external cache) through one shard versus several. Single-shard
//!    must stay within noise of the unsharded engine, and multi-shard must
//!    not regress it by more than the scheduling overhead (items are
//!    cache-warm, so this measures pure cluster machinery).
//!
//! Set `CLUSTER_SCALING_SMOKE=1` (CI) to run both parts at smoke scale:
//! smaller batch/graph, shorter deadline and measurement windows, and no
//! `BENCH_cluster.json` write (smoke numbers are not trajectory-comparable).

use std::sync::Arc;
use std::time::Duration;

use cluster::{ClusterEngine, SchedulePolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtree::SubformulaCache;
use pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
use pdb::ConfidenceEngine;
use workloads::{hardness_mix, random_graph, s2_relation, HardnessMixConfig, RandomGraphConfig};

/// The tight-deadline scheduling experiment (untimed by criterion; the
/// deadline itself bounds the wall clock).
///
/// Three schedules over the same skewed batch and the same shared deadline:
///
/// * `naive-engine` — the flat pre-cluster baseline: the unsharded engine's
///   input-order schedule, where every item's timeout is the full remaining
///   time, so the first straggler encountered eats the whole budget and the
///   tail starves;
/// * `cluster/input-order` — the cluster's slicing and rounds, naive order;
/// * `cluster/hardest-first` — the full hardness-aware schedule.
///
/// In smoke mode (`CLUSTER_SCALING_SMOKE=1`, CI) the batch and the deadline
/// shrink and the trajectory file is left untouched: smoke-scale numbers are
/// not comparable to the committed full-scale history.
fn scheduling_experiment(smoke: bool) {
    let cfg = if smoke { HardnessMixConfig::new(6, 2) } else { HardnessMixConfig::new(12, 4) };
    let (space, lineages) = hardness_mix(&cfg);
    let tight = Duration::from_millis(if smoke { 60 } else { 120 });
    let budget = ConfidenceBudget { timeout: Some(tight), max_work: None };
    let mut records = Vec::new();
    let mut summary: Vec<(&str, usize)> = Vec::new();
    println!("== tight-deadline scheduling ({} items, {:?} budget) ==", lineages.len(), tight);

    let mut report = |label: &'static str, samples: Vec<(f64, bool)>, extra: String| {
        let converged = samples.iter().filter(|&&(_, c)| c).count();
        println!("  {label:<21} converged {converged}/{} {extra}", samples.len());
        summary.push((label, converged));
        if let Some(r) =
            bench::BenchRecord::from_samples(format!("cluster/tight-deadline/{label}"), &samples)
        {
            records.push(r);
        }
    };

    let naive = ConfidenceEngine::new(ConfidenceMethod::DTreeExact)
        .with_threads(2)
        .with_budget(budget.clone())
        .confidence_batch(&lineages, &space, None);
    report(
        "naive-engine",
        naive.results.iter().map(|r| (r.elapsed.as_secs_f64(), r.converged)).collect(),
        String::new(),
    );

    for (label, policy) in [
        ("input-order", SchedulePolicy::InputOrder),
        ("hardest-first", SchedulePolicy::HardestFirst),
    ] {
        let out = ClusterEngine::new(ConfidenceMethod::DTreeExact)
            .with_shards(2)
            .with_policy(policy)
            .with_budget(budget.clone())
            .confidence_batch(&lineages, &space, None);
        report(
            label,
            out.results.iter().map(|r| (r.elapsed.as_secs_f64(), r.converged)).collect(),
            format!("(rounds {}, stolen {})", out.rounds, out.total_stolen()),
        );
    }

    let naive_count = summary[0].1;
    let hardest_count = summary[2].1;
    assert!(
        hardest_count >= naive_count,
        "hardest-first ({hardest_count}) must not converge fewer items than the naive \
         flat-engine order ({naive_count})"
    );
    // Write the trajectory rows at the workspace root (stable regardless of
    // the invoking directory), where they are committed as perf history.
    // Smoke runs skip the write: their scale is not the committed one.
    if smoke {
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cluster.json");
    if let Err(e) = bench::write_json(&path, &records) {
        obs::warn("bench.report", &format!("could not write {}: {e}", path.display()));
    }
}

fn bench_cluster_scaling(c: &mut Criterion) {
    let smoke = std::env::var_os("CLUSTER_SCALING_SMOKE").is_some();
    scheduling_experiment(smoke);

    // Warm-cache scaling series: the same repeated batch through the
    // unsharded engine and through 1/2/4 shards, all sharing one warm
    // external cache per series.
    let nodes = if smoke { 10 } else { 20 };
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(nodes, 0.4));
    let lineages = s2_relation(&graph, nodes);
    let space = db.space();
    let origins = db.origins();
    let method = ConfidenceMethod::DTreeAbsolute(0.01);
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(10)), max_work: None };

    // Sanity: sharded warm results are bit-identical to the unsharded warm
    // results.
    let check_cache = Arc::new(SubformulaCache::new());
    let single = ConfidenceEngine::new(method.clone())
        .with_budget(budget.clone())
        .with_shared_cache(Arc::clone(&check_cache))
        .confidence_batch(&lineages, space, Some(origins));
    let sharded = ClusterEngine::new(method.clone())
        .with_shards(4)
        .with_budget(budget.clone())
        .with_shared_cache(Arc::clone(&check_cache))
        .confidence_batch(&lineages, space, Some(origins));
    for (a, b) in single.results.iter().zip(&sharded.results) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    }

    let mut group = c.benchmark_group("cluster_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke { 1 } else { 3 }));

    // Baseline: the unsharded engine over a warm cache.
    let engine_cache = Arc::new(SubformulaCache::new());
    let engine = ConfidenceEngine::new(method.clone())
        .with_budget(budget.clone())
        .with_shared_cache(Arc::clone(&engine_cache));
    let _ = engine.confidence_batch(&lineages, space, Some(origins));
    group.bench_with_input(BenchmarkId::new("warm", "engine"), &lineages, |b, lineages| {
        b.iter(|| {
            engine
                .confidence_batch(lineages, space, Some(origins))
                .results
                .iter()
                .map(|r| r.estimate)
                .sum::<f64>()
        })
    });

    for shards in [1usize, 2, 4] {
        let cache = Arc::new(SubformulaCache::new());
        let cluster = ClusterEngine::new(method.clone())
            .with_shards(shards)
            .with_budget(budget.clone())
            .with_shared_cache(Arc::clone(&cache));
        let _ = cluster.confidence_batch(&lineages, space, Some(origins));
        group.bench_with_input(
            BenchmarkId::new("warm", format!("cluster_{shards}shard")),
            &lineages,
            |b, lineages| {
                b.iter(|| {
                    cluster
                        .confidence_batch(lineages, space, Some(origins))
                        .results
                        .iter()
                        .map(|r| r.estimate)
                        .sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_scaling);
criterion_main!(benches);
