//! Criterion bench for Figure 8: triangle and path-of-length-2 queries on
//! random graphs (edge probabilities 0.3 and 0.7), d-tree vs Karp-Luby.

use std::time::Duration;

use bench::MotifQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb::confidence::{confidence, ConfidenceBudget, ConfidenceMethod};
use workloads::{random_graph, RandomGraphConfig};

fn bench_random_graphs(c: &mut Criterion) {
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(1)), max_work: None };
    let methods = [
        ("dtree_rel_0.01", ConfidenceMethod::DTreeRelative(0.01)),
        ("aconf_0.05", ConfidenceMethod::KarpLuby { epsilon: 0.05, delta: 1e-4 }),
    ];

    let mut group = c.benchmark_group("fig8_random_graphs");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for &p in &[0.3_f64, 0.7] {
        for &n in &[8_u32, 12] {
            let (db, graph) = random_graph(&RandomGraphConfig::uniform(n, p));
            for query in MotifQuery::random_graph_queries() {
                let lineage = query.lineage(&graph, (0, n - 1));
                for (name, method) in &methods {
                    group.bench_with_input(
                        BenchmarkId::new(*name, format!("{}_n{}_p{}", query.label(), n, p)),
                        &lineage,
                        |b, lineage| {
                            b.iter(|| {
                                confidence(lineage, db.space(), Some(db.origins()), method, &budget)
                                    .estimate
                            })
                        },
                    );
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_random_graphs);
criterion_main!(benches);
