//! Criterion bench for Figure 9: the motif queries (t, p2, p3, s2) on the
//! karate-club and dolphin social networks, d-tree vs Karp-Luby at relative
//! error 0.01.

use std::time::Duration;

use bench::MotifQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdb::confidence::{confidence, ConfidenceBudget, ConfidenceMethod};
use workloads::{dolphins, karate_club, SocialNetworkConfig};

fn bench_social(c: &mut Criterion) {
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(1)), max_work: None };
    let methods = [
        ("dtree_rel_0.01", ConfidenceMethod::DTreeRelative(0.01)),
        ("aconf_0.05", ConfidenceMethod::KarpLuby { epsilon: 0.05, delta: 1e-4 }),
    ];
    let networks = [
        karate_club(&SocialNetworkConfig::karate_default()),
        dolphins(&SocialNetworkConfig::dolphins_default()),
    ];

    let mut group = c.benchmark_group("fig9_social_networks");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for network in &networks {
        for query in MotifQuery::social_queries() {
            let lineage = query.lineage(&network.graph, network.separation_pair());
            for (name, method) in &methods {
                group.bench_with_input(
                    BenchmarkId::new(*name, format!("{}_{}", network.name, query.label())),
                    &lineage,
                    |b, lineage| {
                        b.iter(|| {
                            confidence(
                                lineage,
                                network.db.space(),
                                Some(network.db.origins()),
                                method,
                                &budget,
                            )
                            .estimate
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_social);
criterion_main!(benches);
