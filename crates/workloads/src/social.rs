//! Social-network workloads (Section VII-B of the paper).
//!
//! The paper evaluates the motif queries (triangle, path-2, path-3,
//! two-degrees-of-separation) on two well-known social networks:
//!
//! * **Zachary's karate club** \[28\] — 34 nodes and 78 edges; the edge list is
//!   published and embedded here verbatim.
//! * **A dolphin social network** (Lusseau's bottlenose dolphins) — 62 nodes
//!   and 159 edges. The paper does not reproduce the edge list, so we generate
//!   a network with the published node count, edge count, and a comparable
//!   degree profile (random spanning tree plus random additional edges); see
//!   DESIGN.md, "Substitutions".
//!
//! In both cases the networks "generalize our random graphs in that some
//! edges are missing with certainty and the remaining edges have varying
//! probability of being present in the graph": every present-able edge is
//! annotated with a probability drawn (deterministically, from a seeded RNG)
//! from a configurable range.

use pdb::motif::ProbGraph;
use pdb::{Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a social-network workload: how edge-presence
/// probabilities are assigned.
#[derive(Debug, Clone)]
pub struct SocialNetworkConfig {
    /// Range `[lo, hi)` from which edge probabilities are drawn.
    pub probability_range: (f64, f64),
    /// RNG seed for the probability draw (and, for the dolphin network, the
    /// edge-structure generation).
    pub seed: u64,
}

impl Default for SocialNetworkConfig {
    fn default() -> Self {
        SocialNetworkConfig { probability_range: (0.2, 0.95), seed: 42 }
    }
}

impl SocialNetworkConfig {
    /// Configuration with the given probability range and seed.
    pub fn new(lo: f64, hi: f64, seed: u64) -> Self {
        SocialNetworkConfig { probability_range: (lo, hi), seed }
    }

    /// The paper's karate-club setting: "varying degrees of friendship", i.e.
    /// a wide probability range.
    pub fn karate_default() -> Self {
        SocialNetworkConfig { probability_range: (0.2, 0.95), seed: 42 }
    }

    /// The paper's dolphin setting: friendship established by observation
    /// with high confidence, i.e. probabilities close to 1.
    pub fn dolphins_default() -> Self {
        SocialNetworkConfig { probability_range: (0.7, 0.99), seed: 42 }
    }
}

/// A probabilistic social network: the edge table as a tuple-independent
/// probabilistic database plus the [`ProbGraph`] used to construct motif
/// lineage.
#[derive(Debug, Clone)]
pub struct SocialNetwork {
    /// Human-readable name ("karate" or "dolphins").
    pub name: String,
    /// The probabilistic database holding the edge table `E(u, v)`.
    pub db: Database,
    /// The graph view of the edge table.
    pub graph: ProbGraph,
    /// Number of nodes in the network.
    pub num_nodes: u32,
}

impl SocialNetwork {
    /// A canonical pair of "far apart" nodes used for the separation query
    /// `s2` of the experiments (the two club factions' leaders for karate;
    /// the first and last node for the dolphin network).
    pub fn separation_pair(&self) -> (u32, u32) {
        if self.name == "karate" {
            (1, 34)
        } else {
            (0, self.num_nodes - 1)
        }
    }
}

/// The 78 undirected edges of Zachary's karate club (nodes numbered 1..=34,
/// following the original publication \[28\]).
pub const KARATE_EDGES: [(u32, u32); 78] = [
    (1, 2),
    (1, 3),
    (1, 4),
    (1, 5),
    (1, 6),
    (1, 7),
    (1, 8),
    (1, 9),
    (1, 11),
    (1, 12),
    (1, 13),
    (1, 14),
    (1, 18),
    (1, 20),
    (1, 22),
    (1, 32),
    (2, 3),
    (2, 4),
    (2, 8),
    (2, 14),
    (2, 18),
    (2, 20),
    (2, 22),
    (2, 31),
    (3, 4),
    (3, 8),
    (3, 9),
    (3, 10),
    (3, 14),
    (3, 28),
    (3, 29),
    (3, 33),
    (4, 8),
    (4, 13),
    (4, 14),
    (5, 7),
    (5, 11),
    (6, 7),
    (6, 11),
    (6, 17),
    (7, 17),
    (9, 31),
    (9, 33),
    (9, 34),
    (10, 34),
    (14, 34),
    (15, 33),
    (15, 34),
    (16, 33),
    (16, 34),
    (19, 33),
    (19, 34),
    (20, 34),
    (21, 33),
    (21, 34),
    (23, 33),
    (23, 34),
    (24, 26),
    (24, 28),
    (24, 30),
    (24, 33),
    (24, 34),
    (25, 26),
    (25, 28),
    (25, 32),
    (26, 32),
    (27, 30),
    (27, 34),
    (28, 34),
    (29, 32),
    (29, 34),
    (30, 33),
    (30, 34),
    (31, 33),
    (31, 34),
    (32, 33),
    (32, 34),
    (33, 34),
];

/// Number of nodes in the generated dolphin network.
pub const DOLPHIN_NODES: u32 = 62;
/// Number of edges in the generated dolphin network.
pub const DOLPHIN_EDGES: usize = 159;

fn build_network(
    name: &str,
    num_nodes: u32,
    edges: &[(u32, u32)],
    config: &SocialNetworkConfig,
) -> SocialNetwork {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (lo, hi) = config.probability_range;
    let rows: Vec<(Vec<Value>, f64)> = edges
        .iter()
        .map(|&(u, v)| {
            let p: f64 = rng.gen_range(lo..hi);
            let p = p.clamp(1e-6, 1.0 - 1e-6);
            (vec![Value::Int(u as i64), Value::Int(v as i64)], p)
        })
        .collect();
    let mut db = Database::new();
    db.add_tuple_independent_table("E", &["u", "v"], rows);
    let graph = ProbGraph::from_edge_relation(&db.table("E").expect("edge table just added"));
    SocialNetwork { name: name.to_owned(), db, graph, num_nodes }
}

/// Zachary's karate club as a probabilistic database: the exact 34-node,
/// 78-edge graph with edge probabilities drawn from the configured range.
pub fn karate_club(config: &SocialNetworkConfig) -> SocialNetwork {
    build_network("karate", 34, &KARATE_EDGES, config)
}

/// The dolphin social network: 62 nodes and 159 edges, generated
/// deterministically (random spanning tree plus random extra edges) with
/// probabilities from the configured range. See DESIGN.md for why this
/// substitution preserves the experiment's behaviour.
pub fn dolphins(config: &SocialNetworkConfig) -> SocialNetwork {
    let edges = dolphin_edges(config.seed);
    build_network("dolphins", DOLPHIN_NODES, &edges, config)
}

/// Deterministically generates the dolphin edge structure: a random spanning
/// tree over the 62 nodes (61 edges) ensures connectivity, then random
/// distinct extra edges are added up to 159 edges in total.
fn dolphin_edges(seed: u64) -> Vec<(u32, u32)> {
    // Structure generation is decoupled from the probability seed so that
    // varying the probability range does not change the graph itself.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD01F_15E5);
    let n = DOLPHIN_NODES;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(DOLPHIN_EDGES);
    let mut seen = std::collections::BTreeSet::new();
    // Spanning tree: connect node i to a random earlier node.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let key = (j.min(i), j.max(i));
        seen.insert(key);
        edges.push(key);
    }
    // Extra edges until the published edge count is reached.
    while edges.len() < DOLPHIN_EDGES {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn karate_club_has_published_size() {
        let net = karate_club(&SocialNetworkConfig::karate_default());
        assert_eq!(net.num_nodes, 34);
        assert_eq!(net.graph.num_edges(), 78);
        assert_eq!(net.graph.num_nodes(), 34);
        assert_eq!(net.db.table("E").unwrap().len(), 78);
        assert_eq!(net.db.space().num_vars(), 78);
    }

    #[test]
    fn karate_edge_list_is_simple_and_undirected() {
        let mut seen = std::collections::BTreeSet::new();
        for &(u, v) in KARATE_EDGES.iter() {
            assert!(u < v, "edges stored with u < v");
            assert!((1..=34).contains(&u) && (1..=34).contains(&v));
            assert!(seen.insert((u, v)), "duplicate edge ({u},{v})");
        }
        assert_eq!(seen.len(), 78);
    }

    #[test]
    fn karate_probabilities_in_configured_range() {
        let cfg = SocialNetworkConfig::new(0.4, 0.6, 7);
        let net = karate_club(&cfg);
        for t in net.db.table("E").unwrap().iter() {
            let p = t.probability(net.db.space());
            assert!((0.4..0.6).contains(&p), "probability {p} outside range");
        }
    }

    #[test]
    fn dolphins_has_published_size_and_is_reproducible() {
        let cfg = SocialNetworkConfig::dolphins_default();
        let a = dolphins(&cfg);
        let b = dolphins(&cfg);
        assert_eq!(a.num_nodes, 62);
        assert_eq!(a.graph.num_edges(), 159);
        assert_eq!(a.graph.num_nodes(), 62);
        // Determinism: same edges, same probabilities.
        for (ta, tb) in a.db.table("E").unwrap().iter().zip(b.db.table("E").unwrap().iter()) {
            assert_eq!(ta.values, tb.values);
            let pa = ta.probability(a.db.space());
            let pb = tb.probability(b.db.space());
            assert!((pa - pb).abs() < 1e-15);
        }
    }

    #[test]
    fn dolphin_structure_independent_of_probability_range() {
        let a = dolphins(&SocialNetworkConfig::new(0.1, 0.2, 9));
        let b = dolphins(&SocialNetworkConfig::new(0.8, 0.9, 9));
        let ea: Vec<_> = a.db.table("E").unwrap().iter().map(|t| t.values.clone()).collect();
        let eb: Vec<_> = b.db.table("E").unwrap().iter().map(|t| t.values.clone()).collect();
        assert_eq!(ea, eb, "edge structure must only depend on the seed");
    }

    #[test]
    fn dolphin_probabilities_reflect_high_confidence_default() {
        let net = dolphins(&SocialNetworkConfig::dolphins_default());
        for t in net.db.table("E").unwrap().iter() {
            let p = t.probability(net.db.space());
            assert!((0.7..0.99 + 1e-9).contains(&p));
        }
    }

    #[test]
    fn separation_pairs_are_valid_nodes() {
        let k = karate_club(&SocialNetworkConfig::karate_default());
        let (s, t) = k.separation_pair();
        assert!(k.graph.nodes().any(|n| n == s));
        assert!(k.graph.nodes().any(|n| n == t));
        let d = dolphins(&SocialNetworkConfig::dolphins_default());
        let (s, t) = d.separation_pair();
        assert!(d.graph.nodes().any(|n| n == s));
        assert!(d.graph.nodes().any(|n| n == t));
    }

    #[test]
    fn karate_triangle_query_has_nontrivial_lineage() {
        let net = karate_club(&SocialNetworkConfig::karate_default());
        let tri = net.graph.triangle_lineage();
        // The karate club contains on the order of 45 triangles; assert a
        // robust range rather than the exact literature count so the test is
        // insensitive to minor edge-list transcription differences.
        assert!((30..=60).contains(&tri.len()), "unexpected triangle count {}", tri.len());
        assert!(tri.clauses().iter().all(|c| c.len() == 3));
    }

    #[test]
    fn motif_lineages_have_expected_clause_widths() {
        let net = dolphins(&SocialNetworkConfig::dolphins_default());
        let p2 = net.graph.path2_lineage();
        assert!(!p2.is_empty());
        assert!(p2.clauses().iter().all(|c| c.len() == 2));
        let (s, t) = net.separation_pair();
        let s2 = net.graph.separation2_lineage(s, t);
        assert!(s2.clauses().iter().all(|c| c.len() <= 2));
    }
}
