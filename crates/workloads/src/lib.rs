//! Workload generators for the ICDE 2010 evaluation.
//!
//! Three families of probabilistic databases are used in the paper's
//! experiments (Section VII):
//!
//! * [`tpch`] — a tuple-independent TPC-H-style database generator together
//!   with the evaluated query suite: the tractable (hierarchical) queries,
//!   the IQ inequality queries, and the #P-hard Boolean queries.
//! * [`graphs`] — random graphs: every edge of the n-clique is present
//!   independently with a configurable probability.
//! * [`social`] — the two social networks: Zachary's karate club (exact
//!   34-node, 78-edge graph from the literature) and a dolphin social network
//!   (62 nodes; generated with the published size and density since the
//!   original edge list is not reproduced in the paper — see DESIGN.md).
//!
//! Beyond the paper's static experiments, [`streaming`] generates *growing*
//! answer lineages together with the per-round [`events::LineageDelta`]s
//! that delta-aware confidence maintenance consumes.
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graphs;
pub mod mixes;
pub mod social;
pub mod streaming;
pub mod tpch;

pub use graphs::{random_bid_graph, random_graph, s2_relation, RandomGraphConfig};
pub use mixes::{hardness_mix, HardnessMixConfig};
pub use social::{dolphins, karate_club, SocialNetwork, SocialNetworkConfig};
pub use streaming::{StoredStreamingWorkload, StreamingConfig, StreamingWorkload};
pub use tpch::{QueryClass, TpchConfig, TpchDatabase, TpchQuery};
