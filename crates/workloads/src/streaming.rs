//! Streaming-ingestion workloads: answer lineages that *grow* round by
//! round, together with the per-round [`LineageDelta`]s maintenance
//! consumes.
//!
//! The batch workloads in this crate ([`crate::tpch`], [`crate::mixes`])
//! produce fixed answer relations; delta-aware maintenance
//! (`pdb::ConfidenceEngine::maintain_batch`, `cluster::ClusterEngine::
//! maintain_batch`) additionally needs a *stream*: each round appends newly
//! arrived tuples to a subset of the answers' lineages, and the harness must
//! hand the engine exactly the clauses each pooled d-tree frontier has not
//! seen yet. [`StreamingWorkload`] models that: every appended clause pairs
//! one fresh variable (the streamed tuple) with existing variables of the
//! same answer (the join partners it matched), so deltas genuinely dirty the
//! suspended decompositions instead of dangling as independent islands.
//!
//! Each answer's lineage is a union of **variable-disjoint join blocks**
//! (short chains of [`BLOCK_CLAUSES`] clauses) rather than one monolithic
//! formula — the shape ingestion produces when every arriving tuple joins a
//! bounded group of partners. That shape is also what makes maintenance
//! *local*: an appended clause shares variables with exactly one independent
//! component of the suspended d-tree, so routing dirties that component and
//! leaves every other block's refinement untouched.
//!
//! The generator is deterministic given its config, so incremental-versus-
//! recompile comparisons run both sides over bit-identical formula
//! sequences.

use events::{Clause, Dnf, LineageDelta, ProbabilitySpace, VarId};
use pdb::{Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clauses per join block of an answer's initial lineage. A block of `c`
/// chain clauses spans `c + 1` variables, comfortably under the exact-fold
/// threshold of the d-tree compilers, so each block settles into one exact
/// leaf of the decomposition.
pub const BLOCK_CLAUSES: usize = 3;

/// Configuration for [`StreamingWorkload`].
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Number of answer tuples (one growing lineage each).
    pub answers: usize,
    /// Clause count of each answer's initial lineage (variable-disjoint
    /// join blocks of [`BLOCK_CLAUSES`] 2-atom chain clauses each).
    pub initial_clauses: usize,
    /// Atoms per appended clause: one fresh variable plus
    /// `clause_width − 1` existing variables of the same answer.
    pub clause_width: usize,
    /// Clauses appended to each *touched* answer per round.
    pub appends_per_round: usize,
    /// Answers touched per round (clamped to `answers`); the rest see no
    /// delta, exercising the zero-work snapshot path.
    pub touched_per_round: usize,
    /// RNG seed; the whole stream is deterministic given the config.
    pub seed: u64,
}

impl StreamingConfig {
    /// A stream over `answers` lineages touching `touched_per_round` of
    /// them each round, with defaults (12 initial clauses in 4 join blocks,
    /// 2-atom appends, 2 appends per touched answer) sized so budgeted
    /// d-tree runs truncate and deltas visibly dirty the frontiers.
    pub fn new(answers: usize, touched_per_round: usize) -> Self {
        StreamingConfig {
            answers,
            initial_clauses: 12,
            clause_width: 2,
            appends_per_round: 2,
            touched_per_round,
            seed: 11,
        }
    }
}

/// A deterministic stream of growing answer lineages. See the
/// [module documentation](self).
#[derive(Debug, Clone)]
pub struct StreamingWorkload {
    config: StreamingConfig,
    space: ProbabilitySpace,
    lineages: Vec<Dnf>,
    /// Per-answer variables, appended to as tuples stream in; bridging
    /// atoms are drawn from here so every delta touches the answer's
    /// existing decomposition.
    vars: Vec<Vec<VarId>>,
    rng: StdRng,
    round: usize,
}

impl StreamingWorkload {
    /// Builds the round-0 state: `answers` variable-disjoint lineages of
    /// `initial_clauses` clauses each, arranged as join blocks of
    /// [`BLOCK_CLAUSES`] chain clauses over their own fresh variables.
    pub fn new(config: StreamingConfig) -> Self {
        let mut space = ProbabilitySpace::new();
        let mut vars = Vec::with_capacity(config.answers);
        let mut lineages = Vec::with_capacity(config.answers);
        for k in 0..config.answers {
            let n = config.initial_clauses.max(1);
            let mut answer_vars: Vec<VarId> = Vec::new();
            let mut clauses = Vec::with_capacity(n);
            while clauses.len() < n {
                let c = BLOCK_CLAUSES.min(n - clauses.len());
                let mut block = Vec::with_capacity(c + 1);
                for _ in 0..=c {
                    let i = answer_vars.len() + block.len();
                    block.push(
                        space.add_bool(format!("a{k}_{i}"), 0.12 + 0.03 * ((i + k) % 8) as f64),
                    );
                }
                clauses.extend(block.windows(2).map(Clause::from_bools));
                answer_vars.extend(block);
            }
            lineages.push(Dnf::from_clauses(clauses));
            vars.push(answer_vars);
        }
        let rng = StdRng::seed_from_u64(config.seed);
        StreamingWorkload { config, space, lineages, vars, rng, round: 0 }
    }

    /// The shared probability space (grows monotonically; never invalidated
    /// in place, so pooled frontiers stay current across rounds).
    pub fn space(&self) -> &ProbabilitySpace {
        &self.space
    }

    /// The answers' *current* lineages — what this round's maintenance call
    /// should be handed alongside the deltas.
    pub fn lineages(&self) -> &[Dnf] {
        &self.lineages
    }

    /// Number of completed append rounds.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Ingests one round: appends `appends_per_round` clauses to each of
    /// `touched_per_round` randomly chosen answers and returns one delta
    /// slot per answer (`None` for untouched answers), in the exact shape
    /// `maintain_batch` consumes. Each appended clause is one fresh
    /// variable (probability in `[0.2, 0.5)`) joined with existing
    /// variables of the same answer.
    pub fn next_round(&mut self) -> Vec<Option<LineageDelta>> {
        self.round += 1;
        let n = self.config.answers;
        let mut touched: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates: the first `touched_per_round` entries are a
        // uniform sample without replacement.
        let take = self.config.touched_per_round.min(n);
        for i in 0..take {
            let j = self.rng.gen_range(i..n);
            touched.swap(i, j);
        }
        let mut deltas: Vec<Option<LineageDelta>> = (0..n).map(|_| None).collect();
        for &k in &touched[..take] {
            let mut grown = self.lineages[k].clone();
            for a in 0..self.config.appends_per_round {
                let fresh = self
                    .space
                    .add_bool(format!("s{}_{k}_{a}", self.round), self.rng.gen_range(0.2..0.5));
                let mut atoms = vec![fresh];
                for _ in 1..self.config.clause_width.max(1) {
                    let existing = self.vars[k][self.rng.gen_range(0..self.vars[k].len())];
                    if !atoms.contains(&existing) {
                        atoms.push(existing);
                    }
                }
                self.vars[k].push(fresh);
                grown = grown.or(&Dnf::from_clauses(vec![Clause::from_bools(&atoms)]));
            }
            let delta =
                LineageDelta::between(&self.lineages[k], &grown).expect("or-growth is append-only");
            if !delta.is_empty() {
                deltas[k] = Some(delta);
            }
            self.lineages[k] = grown;
        }
        deltas
    }
}

/// Name of the table a [`StoredStreamingWorkload`] streams its tuples into.
pub const STREAM_TABLE: &str = "stream";

/// A [`StreamingWorkload`] whose streamed tuples land in a [`Database`]
/// table as they arrive — heap- or disk-backed.
///
/// Every tuple (initial blocks and per-round appends alike) goes through a
/// [`pdb::TupleWriter`] one row at a time: no intermediate full-relation
/// `Vec` is ever staged, so running the stream against a
/// [`pdb::storage::DiskStore`]-backed database keeps resident memory bounded
/// by the memtable budget while the table grows without bound. The tuple
/// variables come back from the writer, so the growing answer lineages are
/// exactly the [`StreamingWorkload`] formulas: same variable ids, same
/// distributions, same clause structure, same rng stream — only the variable
/// *names* differ (`"stream#row"` instead of `"a{k}_{i}"`).
///
/// Rows carry `(answer, seq)` so the table itself records which answer each
/// streamed tuple joined into and in what order.
#[derive(Debug)]
pub struct StoredStreamingWorkload {
    config: StreamingConfig,
    db: Database,
    lineages: Vec<Dnf>,
    vars: Vec<Vec<VarId>>,
    rng: StdRng,
    round: usize,
}

impl StoredStreamingWorkload {
    /// Builds the round-0 state inside `db` (which must not already have a
    /// table named [`STREAM_TABLE`] registered): the same join blocks as
    /// [`StreamingWorkload::new`], streamed row-by-row into the store.
    pub fn new(config: StreamingConfig, mut db: Database) -> Self {
        let mut vars = Vec::with_capacity(config.answers);
        let mut lineages = Vec::with_capacity(config.answers);
        let mut writer = db.tuple_writer(STREAM_TABLE, &["answer", "seq"]);
        for k in 0..config.answers {
            let n = config.initial_clauses.max(1);
            let mut answer_vars: Vec<VarId> = Vec::new();
            let mut clauses = Vec::with_capacity(n);
            while clauses.len() < n {
                let c = BLOCK_CLAUSES.min(n - clauses.len());
                let mut block = Vec::with_capacity(c + 1);
                for _ in 0..=c {
                    let i = answer_vars.len() + block.len();
                    let p = 0.12 + 0.03 * ((i + k) % 8) as f64;
                    let var = writer
                        .push(vec![Value::Int(k as i64), Value::Int(i as i64)], p)
                        .expect("stream probabilities are strictly below 1");
                    block.push(var);
                }
                clauses.extend(block.windows(2).map(Clause::from_bools));
                answer_vars.extend(block);
            }
            lineages.push(Dnf::from_clauses(clauses));
            vars.push(answer_vars);
        }
        let rng = StdRng::seed_from_u64(config.seed);
        StoredStreamingWorkload { config, db, lineages, vars, rng, round: 0 }
    }

    /// The database holding the streamed tuples (its space is the workload's
    /// probability space).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The shared probability space.
    pub fn space(&self) -> &ProbabilitySpace {
        self.db.space()
    }

    /// The answers' *current* lineages.
    pub fn lineages(&self) -> &[Dnf] {
        &self.lineages
    }

    /// Number of completed append rounds.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Ingests one round exactly like [`StreamingWorkload::next_round`],
    /// appending each arriving tuple to the store as it is drawn.
    pub fn next_round(&mut self) -> Vec<Option<LineageDelta>> {
        self.round += 1;
        let n = self.config.answers;
        let mut touched: Vec<usize> = (0..n).collect();
        let take = self.config.touched_per_round.min(n);
        for i in 0..take {
            let j = self.rng.gen_range(i..n);
            touched.swap(i, j);
        }
        let mut deltas: Vec<Option<LineageDelta>> = (0..n).map(|_| None).collect();
        let mut writer = self.db.append_writer(STREAM_TABLE);
        for &k in &touched[..take] {
            let mut grown = self.lineages[k].clone();
            for _ in 0..self.config.appends_per_round {
                let p = self.rng.gen_range(0.2..0.5);
                let seq = self.vars[k].len();
                let fresh = writer
                    .push(vec![Value::Int(k as i64), Value::Int(seq as i64)], p)
                    .expect("stream probabilities are strictly below 1");
                let mut atoms = vec![fresh];
                for _ in 1..self.config.clause_width.max(1) {
                    let existing = self.vars[k][self.rng.gen_range(0..self.vars[k].len())];
                    if !atoms.contains(&existing) {
                        atoms.push(existing);
                    }
                }
                self.vars[k].push(fresh);
                grown = grown.or(&Dnf::from_clauses(vec![Clause::from_bools(&atoms)]));
            }
            let delta =
                LineageDelta::between(&self.lineages[k], &grown).expect("or-growth is append-only");
            if !delta.is_empty() {
                deltas[k] = Some(delta);
            }
            self.lineages[k] = grown;
        }
        deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_are_deterministic_given_the_config() {
        let cfg = StreamingConfig::new(5, 3);
        let mut a = StreamingWorkload::new(cfg.clone());
        let mut b = StreamingWorkload::new(cfg);
        assert_eq!(a.lineages(), b.lineages());
        for _ in 0..4 {
            let da = a.next_round();
            let db = b.next_round();
            assert_eq!(a.lineages(), b.lineages());
            for (x, y) in da.iter().zip(&db) {
                match (x, y) {
                    (None, None) => {}
                    (Some(x), Some(y)) => assert_eq!(x.clauses(), y.clauses()),
                    _ => panic!("divergent touch pattern"),
                }
            }
        }
        assert_eq!(a.round(), 4);
    }

    #[test]
    fn deltas_describe_exactly_the_growth() {
        let mut w = StreamingWorkload::new(StreamingConfig::new(4, 2));
        let before = w.lineages().to_vec();
        let watermark = w.space().watermark();
        let deltas = w.next_round();
        assert_eq!(deltas.iter().filter(|d| d.is_some()).count(), 2);
        assert!(w.space().watermark() > watermark, "fresh tuple variables were added");
        for ((old, new), delta) in before.iter().zip(w.lineages()).zip(&deltas) {
            match delta {
                Some(d) => {
                    assert_eq!(
                        LineageDelta::between(old, new).expect("append-only").clauses(),
                        d.clauses()
                    );
                    assert!(new.len() > old.len());
                }
                None => assert_eq!(old, new),
            }
        }
    }

    #[test]
    fn stored_stream_matches_the_plain_workload_bit_for_bit() {
        let cfg = StreamingConfig::new(4, 2);
        let mut plain = StreamingWorkload::new(cfg.clone());
        let mut stored = StoredStreamingWorkload::new(cfg, Database::new());
        assert_eq!(plain.lineages(), stored.lineages());
        for _ in 0..3 {
            plain.next_round();
            stored.next_round();
            assert_eq!(plain.lineages(), stored.lineages(), "same vars, same clauses");
        }
        // Every streamed tuple landed as a row, one variable each.
        let table = stored.database().table(STREAM_TABLE).unwrap();
        assert_eq!(table.len(), stored.space().num_vars());
        assert_eq!(stored.round(), 3);
    }

    #[test]
    fn stored_stream_into_a_disk_database_flushes_and_stays_bit_identical() {
        use pdb::storage::testutil::TempDir;
        let dir = TempDir::new("stored-stream");
        // A small budget so the growing stream table spills into runs.
        let db = Database::open_disk(dir.path(), 256).expect("open");
        let mut stored = StoredStreamingWorkload::new(StreamingConfig::new(3, 2), db);
        let mut plain = StreamingWorkload::new(StreamingConfig::new(3, 2));
        for _ in 0..2 {
            stored.next_round();
            plain.next_round();
        }
        assert_eq!(plain.lineages(), stored.lineages());
        let stats = stored.database().storage_stats();
        assert!(stats.flushes > 0, "the stream must overflow the memtable budget");
        assert_eq!(stored.database().table(STREAM_TABLE).unwrap().len(), stored.space().num_vars());
    }

    #[test]
    fn appended_clauses_bridge_into_existing_variables() {
        let mut w = StreamingWorkload::new(StreamingConfig {
            clause_width: 3,
            ..StreamingConfig::new(3, 3)
        });
        let before: Vec<_> = w.lineages().iter().map(|l| l.vars()).collect();
        let deltas = w.next_round();
        for (k, delta) in deltas.iter().enumerate() {
            let delta = delta.as_ref().expect("all answers touched");
            let bridges = delta
                .clauses()
                .iter()
                .flat_map(|c| c.vars())
                .filter(|v| before[k].contains(v))
                .count();
            assert!(bridges > 0, "deltas must touch the existing decomposition");
        }
    }
}
