//! Mixed-hardness lineage batches for exercising deadline-aware schedulers.
//!
//! The fig7-style hard workloads (B9 and friends) produce answer relations
//! whose lineages are *uniformly* hard; scheduler experiments additionally
//! need batches where hardness is *skewed* — a few #P-hard stragglers among
//! many near-trivial lineages — because that is where lineage *order* under
//! a shared deadline changes what converges. [`hardness_mix`] generates such
//! a batch with controllable sizes: easy items are short clause chains
//! (near-linear to decompose), hard items are dense random CNF-free DNFs
//! whose variables are shared across clauses, forcing deep Shannon
//! expansions exactly like the paper's hard TPC-H lineages.

use events::{Clause, Dnf, ProbabilitySpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`hardness_mix`].
#[derive(Debug, Clone)]
pub struct HardnessMixConfig {
    /// Number of easy lineages.
    pub easy: usize,
    /// Number of hard lineages.
    pub hard: usize,
    /// Clause count of each easy lineage (chain of 2-atom clauses).
    pub easy_clauses: usize,
    /// Clause count of each hard lineage (random 3-atom clauses over a
    /// shared variable pool).
    pub hard_clauses: usize,
    /// Variable-pool size of each hard lineage; smaller pools share
    /// variables more densely and are harder.
    pub hard_vars: usize,
    /// RNG seed (the batch is fully deterministic given the config).
    pub seed: u64,
}

impl HardnessMixConfig {
    /// A skewed batch: `easy` near-trivial chains plus `hard` dense
    /// stragglers, with defaults sized so one hard item costs 5–6 orders of
    /// magnitude more than one easy item under exact d-tree evaluation
    /// (hundreds of milliseconds versus microseconds on 2025 hardware).
    pub fn new(easy: usize, hard: usize) -> Self {
        HardnessMixConfig { easy, hard, easy_clauses: 3, hard_clauses: 60, hard_vars: 48, seed: 7 }
    }
}

/// Generates the batch. Lineages are interleaved (hard items are spread
/// through the input order, as answer-tuple enumeration would produce them),
/// each over its own fresh variables so per-item costs are independent.
pub fn hardness_mix(config: &HardnessMixConfig) -> (ProbabilitySpace, Vec<Dnf>) {
    let mut space = ProbabilitySpace::new();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total = config.easy + config.hard;
    let mut lineages = Vec::with_capacity(total);
    let mut hard_left = config.hard;
    let mut easy_left = config.easy;
    for k in 0..total {
        // Spread hard items evenly through the input order.
        let emit_hard = hard_left > 0
            && (easy_left == 0
                || (k * config.hard.max(1)) / total.max(1) + 1 > config.hard - hard_left);
        if emit_hard {
            hard_left -= 1;
            lineages.push(hard_lineage(&mut space, &mut rng, config, k));
        } else {
            easy_left -= 1;
            lineages.push(easy_lineage(&mut space, config, k));
        }
    }
    (space, lineages)
}

/// A short chain `{x_0 x_1} ∨ {x_1 x_2} ∨ …`: decomposes in near-linear
/// time.
fn easy_lineage(space: &mut ProbabilitySpace, config: &HardnessMixConfig, k: usize) -> Dnf {
    let n = config.easy_clauses.max(1);
    let vars: Vec<_> = (0..=n)
        .map(|i| space.add_bool(format!("e{k}_{i}"), 0.15 + 0.05 * ((i + k) % 7) as f64))
        .collect();
    Dnf::from_clauses((0..n).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])))
}

/// A dense random DNF: `hard_clauses` 3-atom clauses over a pool of
/// `hard_vars` variables. Every variable occurs in several clauses, so no
/// independent-or/and split applies and the d-tree must Shannon-expand
/// deeply — the same structure that makes the fig7 TPC-H lineages #P-hard.
fn hard_lineage(
    space: &mut ProbabilitySpace,
    rng: &mut StdRng,
    config: &HardnessMixConfig,
    k: usize,
) -> Dnf {
    let pool: Vec<_> = (0..config.hard_vars.max(4))
        .map(|i| space.add_bool(format!("h{k}_{i}"), 0.25 + 0.02 * (i % 10) as f64))
        .collect();
    let mut clauses = Vec::with_capacity(config.hard_clauses);
    while clauses.len() < config.hard_clauses {
        let a = rng.gen_range(0..pool.len());
        let mut b = rng.gen_range(0..pool.len());
        while b == a {
            b = rng.gen_range(0..pool.len());
        }
        let mut c = rng.gen_range(0..pool.len());
        while c == a || c == b {
            c = rng.gen_range(0..pool.len());
        }
        clauses.push(Clause::from_bools(&[pool[a], pool[b], pool[c]]));
    }
    Dnf::from_clauses(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_has_requested_shape_and_is_deterministic() {
        let cfg = HardnessMixConfig::new(6, 3);
        let (_s, lineages) = hardness_mix(&cfg);
        assert_eq!(lineages.len(), 9);
        let hard = lineages.iter().filter(|l| l.len() > cfg.easy_clauses).count();
        assert_eq!(hard, 3, "3 hard lineages expected");
        // Hard items are spread, not clumped at one end.
        let positions: Vec<usize> = lineages
            .iter()
            .enumerate()
            .filter(|(_, l)| l.len() > cfg.easy_clauses)
            .map(|(i, _)| i)
            .collect();
        assert!(positions.first().copied().unwrap_or(0) < 4, "{positions:?}");
        assert!(positions.last().copied().unwrap_or(0) >= 6, "{positions:?}");
        // Deterministic given the seed.
        let (_s2, again) = hardness_mix(&cfg);
        assert_eq!(lineages, again);
    }

    #[test]
    fn lineages_are_variable_disjoint() {
        let (_s, lineages) = hardness_mix(&HardnessMixConfig::new(4, 2));
        for (i, a) in lineages.iter().enumerate() {
            for b in &lineages[i + 1..] {
                assert!(a.vars().is_disjoint(&b.vars()));
            }
        }
    }
}
