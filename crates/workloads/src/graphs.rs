//! Random probabilistic graphs (Section VII-B).
//!
//! "An undirected random graph with n nodes is a probabilistic database in
//! which the possible worlds are the subgraphs of the n-clique": every one of
//! the `n·(n−1)/2` edges is present independently with probability `p`.

use events::Dnf;
use pdb::motif::ProbGraph;
use pdb::{Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a random probabilistic graph.
#[derive(Debug, Clone)]
pub struct RandomGraphConfig {
    /// Number of nodes (the graph is the probabilistic n-clique).
    pub nodes: u32,
    /// Membership probability of every edge.
    pub edge_probability: f64,
    /// When `Some((lo, hi))`, edge probabilities are drawn uniformly from
    /// `[lo, hi)` instead of being constant (used to study skew).
    pub probability_range: Option<(f64, f64)>,
    /// RNG seed for the probability draw (only used with
    /// `probability_range`).
    pub seed: u64,
}

impl RandomGraphConfig {
    /// Uniform-probability configuration (the setting of Figure 8).
    pub fn uniform(nodes: u32, edge_probability: f64) -> Self {
        RandomGraphConfig { nodes, edge_probability, probability_range: None, seed: 0 }
    }

    /// Configuration with per-edge probabilities drawn from a range.
    pub fn with_range(nodes: u32, lo: f64, hi: f64, seed: u64) -> Self {
        RandomGraphConfig { nodes, edge_probability: 0.5, probability_range: Some((lo, hi)), seed }
    }

    /// Number of possible edges.
    pub fn num_edges(&self) -> usize {
        let n = self.nodes as usize;
        n * (n - 1) / 2
    }
}

/// All non-empty lineages of the two-degrees-of-separation answer relation
/// `s2(X, Y)` over the ordered node pairs of a graph with `n` nodes — the
/// whole-query batch the fig8-style benchmarks and the batch-engine tests
/// evaluate.
pub fn s2_relation(graph: &ProbGraph, n: u32) -> Vec<Dnf> {
    let mut lineages = Vec::new();
    for s in 0..n {
        for t in 0..n {
            if s != t {
                let l = graph.separation2_lineage(s, t);
                if !l.is_empty() {
                    lineages.push(l);
                }
            }
        }
    }
    lineages
}

/// Generates the random graph as a probabilistic database with one
/// tuple-independent edge table `E(u, v)`, plus the corresponding
/// [`ProbGraph`] for motif-lineage construction.
pub fn random_graph(config: &RandomGraphConfig) -> (Database, ProbGraph) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows = Vec::with_capacity(config.num_edges());
    for u in 0..config.nodes {
        for v in (u + 1)..config.nodes {
            let p = match config.probability_range {
                Some((lo, hi)) => rng.gen_range(lo..hi),
                None => config.edge_probability,
            };
            // Clamp away from the degenerate endpoints required by the
            // probability-space constructor.
            let p = p.clamp(1e-6, 1.0 - 1e-6);
            rows.push((vec![Value::Int(u as i64), Value::Int(v as i64)], p));
        }
    }
    let mut db = Database::new();
    db.add_tuple_independent_table("E", &["u", "v"], rows);
    let graph = ProbGraph::from_edge_relation(&db.table("E").expect("edge table just added"));
    (db, graph)
}

/// Generates the same random graph as [`random_graph`] but as a
/// **block-independent-disjoint** edge table (Figure 5 (b) of the paper):
/// every edge block carries both a "present" alternative (probability `p`)
/// and an "absent" alternative (probability `1 − p`). This representation
/// makes queries about the *absence* of edges — e.g. "within two but not one
/// degrees of separation" — expressible as positive DNFs over the block
/// variables.
pub fn random_bid_graph(config: &RandomGraphConfig) -> (Database, ProbGraph) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut blocks = Vec::with_capacity(config.num_edges());
    for u in 0..config.nodes {
        for v in (u + 1)..config.nodes {
            let p = match config.probability_range {
                Some((lo, hi)) => rng.gen_range(lo..hi),
                None => config.edge_probability,
            };
            let p = p.clamp(1e-6, 1.0 - 1e-6);
            blocks.push(vec![
                (vec![Value::Int(u as i64), Value::Int(v as i64), Value::Int(1)], p),
                (vec![Value::Int(u as i64), Value::Int(v as i64), Value::Int(0)], 1.0 - p),
            ]);
        }
    }
    let mut db = Database::new();
    db.add_bid_table("E", &["u", "v", "present"], blocks);
    let graph = ProbGraph::from_bid_edge_relation(&db.table("E").expect("edge table just added"));
    (db, graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_structure() {
        let (db, g) = random_graph(&RandomGraphConfig::uniform(6, 0.3));
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(db.table("E").unwrap().len(), 15);
        assert_eq!(db.space().num_vars(), 15);
        // All edges share the same probability.
        for t in db.table("E").unwrap().iter() {
            assert!((t.probability(db.space()) - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_scale_forty_nodes_has_780_edges() {
        let cfg = RandomGraphConfig::uniform(40, 0.5);
        assert_eq!(cfg.num_edges(), 780);
        let (_, g) = random_graph(&cfg);
        assert_eq!(g.num_edges(), 780);
    }

    #[test]
    fn probability_range_is_respected_and_reproducible() {
        let cfg = RandomGraphConfig::with_range(8, 0.2, 0.4, 7);
        let (db1, _) = random_graph(&cfg);
        let (db2, _) = random_graph(&cfg);
        for (t1, t2) in db1.table("E").unwrap().iter().zip(db2.table("E").unwrap().iter()) {
            let p1 = t1.probability(db1.space());
            let p2 = t2.probability(db2.space());
            assert!((p1 - p2).abs() < 1e-12, "generator must be deterministic");
            assert!((0.2..0.4).contains(&p1));
        }
    }

    #[test]
    fn bid_graph_matches_tuple_independent_graph_on_positive_queries() {
        // The triangle probability must be identical whether the edge table
        // is tuple-independent or block-independent-disjoint.
        let cfg = RandomGraphConfig::uniform(5, 0.35);
        let (db_ti, g_ti) = random_graph(&cfg);
        let (db_bid, g_bid) = random_bid_graph(&cfg);
        assert_eq!(g_ti.num_edges(), g_bid.num_edges());
        let p_ti = g_ti.triangle_lineage().exact_probability_enumeration(db_ti.space());
        let p_bid = g_bid.triangle_lineage().exact_probability_enumeration(db_bid.space());
        assert!((p_ti - p_bid).abs() < 1e-9);
    }

    #[test]
    fn bid_graph_supports_within_two_not_one() {
        let (db, g) = random_bid_graph(&RandomGraphConfig::uniform(5, 0.4));
        // Every pair has answers defined (absence is representable).
        let lineage = g.within2_not1_lineage(0, 4).expect("BID graph has absence lineage");
        let p = lineage.exact_probability_enumeration(db.space());
        assert!((0.0..=1.0).contains(&p));
        // Consistency with the d-tree pipeline.
        let d = dtree::exact_probability(&lineage, db.space(), &dtree::CompileOptions::default());
        assert!((d.probability - p).abs() < 1e-9);
        // The within-2-not-1 event implies the within-2 event.
        let s2 = g.separation2_lineage(0, 4).exact_probability_enumeration(db.space());
        assert!(p <= s2 + 1e-9);
    }

    #[test]
    fn triangle_lineage_size_matches_combinatorics() {
        // Every triple of nodes is a potential triangle in the clique:
        // C(6, 3) = 20 clauses of width 3.
        let (_, g) = random_graph(&RandomGraphConfig::uniform(6, 0.5));
        let tri = g.triangle_lineage();
        assert_eq!(tri.len(), 20);
        assert!(tri.clauses().iter().all(|c| c.len() == 3));
    }

    #[test]
    fn triangle_probability_agrees_with_enumeration_on_small_graphs() {
        let (db, g) = random_graph(&RandomGraphConfig::uniform(4, 0.4));
        let tri = g.triangle_lineage();
        // 4 nodes: C(4,3) = 4 potential triangles over 6 edges.
        assert_eq!(tri.len(), 4);
        let p_exact = tri.exact_probability_enumeration(db.space());
        let p_dtree = dtree::exact_probability(&tri, db.space(), &dtree::CompileOptions::default())
            .probability;
        assert!((p_exact - p_dtree).abs() < 1e-9);
    }
}
