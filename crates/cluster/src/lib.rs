//! A sharded, hardness-aware, deadline-aware confidence cluster on top of
//! [`pdb::ConfidenceEngine`].
//!
//! A single [`ConfidenceEngine`] batch parallelises across the lineages of
//! one query on one flat thread pool. This crate scales that out and makes
//! it *schedule-aware*:
//!
//! * a [`HardnessEstimator`] scores every lineage from cheap structural
//!   features — clause/variable counts, max clause width, duplicate-atom
//!   density — without compiling it, and calibrates those scores online
//!   against the [`dtree::CompileStats::work`] counters finished runs
//!   export;
//! * a [`ShardRouter`] partitions the answer tuples across `N` shard
//!   engines through a pluggable [`Partitioner`] (hash routing for cache
//!   affinity, size-balanced LPT packing for skewed batches);
//! * a deadline-aware [scheduler](SchedulePolicy) turns the per-batch
//!   timeout into one cluster-wide deadline, runs each shard hardest-first,
//!   slices the remaining time proportionally so a tight deadline degrades
//!   uniformly instead of starving the tail, and work-steals straggler
//!   items across shards;
//! * a [`ClusterBatchResult`] merges the per-shard outcomes with per-shard
//!   cache, stealing, and convergence stats, plus the per-item
//!   width-vs-budget refinement curves of every suspended d-tree frontier;
//! * [`ClusterEngine::maintain_batch`] runs one round of **streaming
//!   maintenance** across the shards: pooled d-tree frontiers absorb
//!   per-item lineage deltas in place, the scheduler orders the dirtied
//!   items by how much their delta widened the bounds, and items whose
//!   bounds stayed within the guarantee are served as zero-work snapshots.
//!
//! **Sharding never changes answers.** For the deterministic d-tree methods
//! the cluster is bit-identical to [`ConfidenceEngine::confidence_batch`];
//! for the Monte-Carlo methods it is reproducible under a fixed seed
//! because every item's RNG seed derives from its *input index*
//! ([`ConfidenceEngine::item_seed`]), independent of shard assignment,
//! stealing, or thread interleaving.
//!
//! ```
//! use cluster::ClusterEngine;
//! use events::{Clause, Dnf, ProbabilitySpace};
//! use pdb::confidence::ConfidenceMethod;
//! use pdb::ConfidenceEngine;
//!
//! let mut space = ProbabilitySpace::new();
//! let vars: Vec<_> = (0..12).map(|i| space.add_bool(format!("x{i}"), 0.3)).collect();
//! let lineages: Vec<Dnf> = (0..6)
//!     .map(|k| {
//!         Dnf::from_clauses((0..5).map(|i| Clause::from_bools(&[vars[(i + k) % 12], vars[(i + k + 1) % 12]])))
//!     })
//!     .collect();
//!
//! let cluster = ClusterEngine::new(ConfidenceMethod::DTreeAbsolute(0.01)).with_shards(3);
//! let out = cluster.confidence_batch(&lineages, &space, None);
//!
//! // Bit-identical to the unsharded engine.
//! let single = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(0.01))
//!     .confidence_batch(&lineages, &space, None);
//! for (a, b) in out.results.iter().zip(&single.results) {
//!     assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod hardness;
mod router;
mod scheduler;

use std::sync::Arc;
use std::time::{Duration, Instant};

use dtree::{CacheStats, SubformulaCache};
use events::{Dnf, LineageDelta, ProbabilitySpace, VarOrigins};
use pdb::confidence::{ConfidenceBudget, ConfidenceMethod, ConfidenceResult, ResumableConfidence};
use pdb::fault::Fault;
use pdb::{BatchResult, ConfidenceEngine, ResumablePool};

pub use hardness::{HardnessEstimator, LineageFeatures};
pub use router::{HashPartitioner, Partitioner, RouteItem, ShardRouter, SizeBalancedPartitioner};
pub use scheduler::SchedulePolicy;

/// How the shard engines share (or don't share) a sub-formula cache.
#[derive(Debug, Clone, Default)]
pub enum CacheTopology {
    /// One cache shared by every shard, created fresh per batch (default).
    /// Maximises cross-shard reuse on overlapping lineages; the cache's own
    /// internal sharding keeps contention low.
    #[default]
    Shared,
    /// One private cache per shard, created fresh per batch. No cross-shard
    /// traffic at all; pair with [`HashPartitioner`] so repeated lineages
    /// keep landing on the shard that already computed them.
    PerShard,
    /// No caching (for measuring the cache's effect; results are identical
    /// either way).
    Disabled,
    /// A caller-owned, long-lived cache shared by every shard across
    /// batches (the cross-batch mode of
    /// [`ConfidenceEngine::with_shared_cache`]).
    External(Arc<SubformulaCache>),
}

/// Per-shard outcome summary inside a [`ClusterBatchResult`].
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Items the router originally assigned to this shard.
    pub assigned: usize,
    /// Item executions this shard's worker performed (≥ its share of
    /// `assigned` items; refinement rounds re-execute stragglers).
    pub executed: usize,
    /// Executions this worker *stole* from other shards' queues.
    pub stolen: usize,
    /// Executions served by *resuming* an item's suspended d-tree frontier
    /// from an earlier refinement round instead of recompiling it from
    /// scratch (deterministic d-tree methods under a deadline only).
    pub resumed: usize,
    /// Resumptions of a suspended frontier whose previous slice ran on a
    /// *different* shard — handles that a work steal (or refinement
    /// re-scoring) carried across the shard boundary instead of recompiling
    /// the item on the thief.
    pub migrated: usize,
    /// Worker panics this shard suffered. Each one kills the shard's worker
    /// for the rest of its round: the orphaned queue is drained by the
    /// surviving stealers and the panicked item is retried once on another
    /// shard before degrading (see [`ClusterEngine::with_fault`]).
    pub deaths: usize,
    /// Sum of the per-item algorithm times this worker spent.
    pub compute: Duration,
    /// Cache-effectiveness deltas for this shard's private cache. All zeros
    /// under the [`CacheTopology::Shared`] / [`CacheTopology::External`]
    /// topologies, where traffic is attributed cluster-wide in
    /// [`ClusterBatchResult::cache`] instead.
    pub cache: CacheStats,
}

/// Result of a sharded batch: the merge of every shard's work.
#[derive(Debug, Clone)]
pub struct ClusterBatchResult {
    /// Per-lineage results in input order — exactly what
    /// [`ConfidenceEngine::confidence_batch`] would return for the same
    /// batch (bit-identical for deterministic methods, seed-reproducible
    /// for Monte-Carlo ones).
    pub results: Vec<ConfidenceResult>,
    /// Wall-clock time for the whole cluster batch.
    pub wall: Duration,
    /// Per-shard execution and cache stats.
    pub shards: Vec<ShardStats>,
    /// Cluster-wide cache-effectiveness deltas for this batch (summed over
    /// every cache the topology created or borrowed).
    pub cache: CacheStats,
    /// Number of scheduling rounds run (1 unless a deadline forced
    /// refinement rounds).
    pub rounds: usize,
    /// Per-item width-vs-budget refinement curves, harvested from the
    /// suspended d-tree frontiers that survived the run
    /// (`(cumulative_steps, interval_width)` samples; see
    /// [`ResumableConfidence::width_curve`]). `None` for items that never
    /// had a frontier captured: Monte-Carlo items, deduplicated copies,
    /// and — in plain batches — runs without a deadline or runs that
    /// converged without truncating.
    pub curves: Vec<Option<Vec<(usize, f64)>>>,
}

impl ClusterBatchResult {
    /// `true` when every lineage met its guarantee within the budget.
    pub fn all_converged(&self) -> bool {
        self.results.iter().all(|r| r.converged)
    }

    /// Number of lineages that met their guarantee.
    pub fn converged_count(&self) -> usize {
        self.results.iter().filter(|r| r.converged).count()
    }

    /// Sum of the per-item algorithm times across all shards.
    pub fn total_compute(&self) -> Duration {
        self.shards.iter().map(|s| s.compute).sum()
    }

    /// Total number of cross-shard steals in the batch.
    pub fn total_stolen(&self) -> usize {
        self.shards.iter().map(|s| s.stolen).sum()
    }

    /// Total number of executions served by resuming a suspended d-tree
    /// frontier instead of recompiling (refinement rounds only).
    pub fn total_resumed(&self) -> usize {
        self.shards.iter().map(|s| s.resumed).sum()
    }

    /// Total number of suspended-frontier migrations: resumptions where the
    /// handle's previous slice ran on a different shard.
    pub fn total_migrated(&self) -> usize {
        self.shards.iter().map(|s| s.migrated).sum()
    }

    /// Total number of worker panics the scheduler caught and isolated.
    pub fn total_deaths(&self) -> usize {
        self.shards.iter().map(|s| s.deaths).sum()
    }

    /// Number of items that report a **degraded** result — a vacuous `[0, 1]`
    /// interval standing in for a computation lost to a panic or dead shard
    /// ([`ConfidenceResult::degraded`] is `Some`). Always 0 without fault
    /// injection or real worker crashes.
    pub fn degraded_count(&self) -> usize {
        self.results.iter().filter(|r| r.degraded.is_some()).count()
    }

    /// Flattens the cluster result into the unsharded engine's
    /// [`BatchResult`] shape (results + wall + merged cache), for callers
    /// written against the single-engine API.
    pub fn into_batch_result(self) -> BatchResult {
        BatchResult { results: self.results, wall: self.wall, cache: self.cache }
    }
}

/// Sums cache-stat deltas across shards (`entries` sums too: distinct caches
/// hold distinct entry sets; a shared cache is counted once by the caller).
fn merge_cache_stats(deltas: impl IntoIterator<Item = CacheStats>) -> CacheStats {
    let mut out = CacheStats::default();
    for d in deltas {
        out.hits += d.hits;
        out.misses += d.misses;
        out.stale += d.stale;
        out.evictions += d.evictions;
        out.entries += d.entries;
    }
    out
}

/// A sharded, deadline-aware confidence service above
/// [`pdb::ConfidenceEngine`]. See the [crate docs](self) for the moving
/// parts and guarantees, and [`ClusterEngine::confidence_batch`] for the
/// lifecycle of one batch.
#[derive(Clone)]
pub struct ClusterEngine {
    method: ConfidenceMethod,
    budget: ConfidenceBudget,
    shards: usize,
    seed: Option<u64>,
    policy: SchedulePolicy,
    partitioner: Arc<dyn Partitioner>,
    topology: CacheTopology,
    estimator: Arc<HardnessEstimator>,
    max_rounds: usize,
    obs: obs::Obs,
    fault: Fault,
}

impl std::fmt::Debug for ClusterEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterEngine")
            .field("method", &self.method)
            .field("budget", &self.budget)
            .field("shards", &self.shards)
            .field("seed", &self.seed)
            .field("policy", &self.policy)
            .field("partitioner", &self.partitioner.name())
            .field("max_rounds", &self.max_rounds)
            .finish()
    }
}

impl ClusterEngine {
    /// A cluster for the given method: 2 shards, hash routing,
    /// hardest-first scheduling, one shared per-batch cache, no budget,
    /// entropy-seeded Monte-Carlo, and a fresh (uncalibrated) hardness
    /// estimator.
    pub fn new(method: ConfidenceMethod) -> Self {
        ClusterEngine {
            method,
            budget: ConfidenceBudget::default(),
            shards: 2,
            seed: None,
            policy: SchedulePolicy::default(),
            partitioner: Arc::new(HashPartitioner),
            topology: CacheTopology::default(),
            estimator: Arc::new(HardnessEstimator::new()),
            max_rounds: 4,
            obs: obs::Obs::default(),
            fault: Fault::disabled(),
        }
    }

    /// Sets the number of shards (clamped to ≥ 1; a degenerate 0 must not
    /// produce a zero-worker cluster that computes nothing).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-batch budget. `timeout` becomes the *cluster-wide*
    /// deadline shared by every shard; `max_work` still applies per item.
    pub fn with_budget(mut self, budget: ConfidenceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the base seed making Monte-Carlo methods reproducible,
    /// independent of shard assignment and stealing (per-item seeds derive
    /// from the *input index*).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the within-shard scheduling order (default:
    /// [`SchedulePolicy::HardestFirst`]).
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the partitioning policy (default: [`HashPartitioner`]).
    pub fn with_partitioner(mut self, partitioner: Arc<dyn Partitioner>) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Sets the cache topology (default: [`CacheTopology::Shared`]).
    pub fn with_cache_topology(mut self, topology: CacheTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Attaches a caller-owned, long-lived cache shared by all shards
    /// across batches (shorthand for
    /// [`CacheTopology::External`]).
    pub fn with_shared_cache(self, cache: Arc<SubformulaCache>) -> Self {
        self.with_cache_topology(CacheTopology::External(cache))
    }

    /// Disables sub-formula caching (shorthand for
    /// [`CacheTopology::Disabled`]).
    pub fn without_cache(self) -> Self {
        self.with_cache_topology(CacheTopology::Disabled)
    }

    /// Shares a hardness estimator with other engines (and keeps its
    /// calibration across batches). The default estimator is private to the
    /// engine and starts uncalibrated.
    pub fn with_estimator(mut self, estimator: Arc<HardnessEstimator>) -> Self {
        self.estimator = estimator;
        self
    }

    /// Caps the number of refinement rounds a deadline may trigger
    /// (clamped to ≥ 1; default 4). Rounds re-run non-converged items with
    /// the time that remains, so more rounds only matter for tight
    /// deadlines over mixed-hardness batches.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// Attaches an observability sink: the scheduler emits round, steal,
    /// migration, and deadline-slack metrics and trace events
    /// (`cluster.*`); per-shard engines carry the sink into the `engine.*`
    /// and `dtree.*` layers; and — if the engine still owns its estimator
    /// exclusively (i.e. [`ClusterEngine::with_estimator`] was not given a
    /// shared one) — hardness calibration error is tracked too. A shared
    /// estimator keeps whatever sink its owner attached via
    /// [`HardnessEstimator::attach_obs`] before wrapping it in an `Arc`.
    ///
    /// With the default (disabled) sink every handle is a no-op and results
    /// are bit-identical either way.
    pub fn with_obs(mut self, o: &obs::Obs) -> Self {
        self.obs = o.clone();
        if let Some(estimator) = Arc::get_mut(&mut self.estimator) {
            estimator.attach_obs(o);
        }
        self
    }

    /// Attaches a fault-injection plan (see [`pdb::fault`]): every item
    /// execution checks the `"cluster.worker"` failpoint, and injected
    /// panics exercise the scheduler's shard-failure tolerance — the
    /// panicking worker dies for the rest of its round, its orphaned queue
    /// is drained by the surviving stealers, and the panicked item is
    /// retried once on another shard before degrading to the vacuous
    /// `[0, 1]` interval ([`ConfidenceResult::degraded`]). With the default
    /// [`Fault::disabled`] plan the check is a free no-op and results are
    /// bit-identical to an engine without one.
    pub fn with_fault(mut self, fault: &Fault) -> Self {
        self.fault = fault.clone();
        self
    }

    /// The cluster's hardness estimator (e.g. to pre-calibrate it or share
    /// it with another engine).
    pub fn estimator(&self) -> &Arc<HardnessEstimator> {
        &self.estimator
    }

    /// The effective shard count (≥ 1).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Computes the confidences of a whole answer relation across the
    /// cluster's shards. Results come back in input order; see the
    /// [crate docs](self) for the identity guarantees versus
    /// [`ConfidenceEngine::confidence_batch`].
    ///
    /// Lifecycle of one batch: deduplicate identical lineages (deterministic
    /// methods only, exactly like the unsharded engine — the duplicate gets
    /// a copy of its representative's result with `elapsed` zeroed) → score
    /// every lineage (cheap structural features × calibrated correction) →
    /// route items to shards ([`Partitioner`]) → order each shard queue
    /// ([`SchedulePolicy`]) → run one stealing worker per shard against the
    /// cluster-wide deadline, slicing the remaining time proportionally →
    /// if time remains, re-run stragglers in refinement rounds → merge
    /// per-shard stats.
    pub fn confidence_batch<L: AsRef<Dnf> + Sync>(
        &self,
        lineages: &[L],
        space: &ProbabilitySpace,
        origins: Option<&VarOrigins>,
    ) -> ClusterBatchResult {
        let start = Instant::now();
        let deadline = self.budget.timeout.map(|t| start + t);
        let lineages: Vec<&Dnf> = lineages.iter().map(AsRef::as_ref).collect();

        // Duplicate detection via the engine's own helper, so both sides of
        // the bit-identity contract deduplicate identically: answer
        // relations with symmetries (s2(x, y) = s2(y, x)) and repeated user
        // queries produce identical lineages; deterministic methods evaluate
        // one representative. Monte-Carlo items keep their per-index seeds,
        // so every item stays its own representative there.
        let (representative, work) = pdb::dedup_lineages(&self.method, &lineages);

        // Score and route (representatives only — duplicates are neither
        // scheduled nor observed, so their features are never read).
        let mut features: Vec<LineageFeatures> = vec![LineageFeatures::default(); lineages.len()];
        let mut scores: Vec<f64> = vec![0.0; lineages.len()];
        for &i in &work {
            features[i] = LineageFeatures::of(lineages[i]);
            scores[i] = self.estimator.score_features(&features[i]);
        }
        let shards = self.shards;
        let queues: Vec<Vec<usize>> = if shards == 1 {
            // Nothing to route: skip per-lineage fingerprinting so the
            // 1-shard cluster stays close to the plain engine on warm,
            // cache-hit-dominated batches.
            vec![work.clone()]
        } else {
            let items: Vec<RouteItem<'_>> = work
                .iter()
                .map(|&index| RouteItem {
                    index,
                    lineage: lineages[index],
                    hash: lineages[index].canonical_hash(),
                    score: scores[index],
                })
                .collect();
            ShardRouter::new(self.partitioner.as_ref(), shards).route(&items)
        };

        let (owned, per_shard) = self.cache_setup();
        let cache_refs: Vec<Option<&SubformulaCache>> =
            per_shard.iter().map(|slot| slot.map(|k| owned[k].as_ref())).collect();
        let before: Vec<CacheStats> = owned.iter().map(|c| c.stats()).collect();
        let engine = self.shard_engine();
        let cobs = scheduler::ClusterObs::new(&self.obs);

        let ctx = scheduler::RunContext {
            lineages: &lineages,
            space,
            origins,
            features: &features,
            scores: &scores,
            engine: &engine,
            estimator: &self.estimator,
            caches: &cache_refs,
            policy: self.policy,
            deadline,
            max_rounds: self.max_rounds,
            max_work: self.budget.max_work,
            // Capturing frontiers costs a little on every fresh run; only
            // pay it when refinement rounds could actually resume them.
            capture: deadline.is_some() && self.max_rounds > 1,
            obs: &cobs,
            fault: &self.fault,
        };
        let outcome = scheduler::execute(&ctx, queues, vec![None; lineages.len()]);

        let after: Vec<CacheStats> = owned.iter().map(|c| c.stats()).collect();
        let deltas: Vec<CacheStats> = after.iter().zip(&before).map(|(a, b)| a.since(b)).collect();
        let shard_stats: Vec<ShardStats> = outcome
            .shards
            .iter()
            .enumerate()
            .map(|(shard, acc)| ShardStats {
                shard,
                assigned: acc.assigned,
                executed: acc.executed,
                stolen: acc.stolen,
                resumed: acc.resumed,
                migrated: acc.migrated,
                deaths: acc.deaths,
                compute: acc.compute,
                cache: match self.topology {
                    CacheTopology::PerShard => deltas.get(shard).cloned().unwrap_or_default(),
                    _ => CacheStats::default(),
                },
            })
            .collect();

        // Replicate representative results onto their duplicates, with
        // `elapsed` zeroed: no work ran for the duplicate (same contract as
        // the unsharded engine).
        let mut slots = outcome.results;
        for i in 0..lineages.len() {
            if slots[i].is_none() {
                let mut r = slots[representative[i]]
                    .clone()
                    .expect("representative evaluated before duplicate fill");
                r.elapsed = Duration::ZERO;
                slots[i] = Some(r);
            }
        }
        let curves: Vec<Option<Vec<(usize, f64)>>> =
            outcome.handles.iter().map(|h| h.as_ref().map(|h| h.width_curve().to_vec())).collect();

        ClusterBatchResult {
            results: slots.into_iter().map(|r| r.expect("scheduler fills every slot")).collect(),
            wall: start.elapsed(),
            shards: shard_stats,
            cache: merge_cache_stats(deltas),
            rounds: outcome.rounds,
            curves,
        }
    }

    /// One round of **streaming confidence maintenance** across the
    /// cluster's shards — the sharded, schedule-aware counterpart of
    /// [`ConfidenceEngine::maintain_batch`].
    ///
    /// Inputs per item `i`: `lineages[i]` is the item's *current*
    /// (post-append) lineage and `deltas[i]` the clauses appended since the
    /// previous round (`None` or an empty delta means no change), obtained
    /// from [`events::LineageArena::append_clauses`] or
    /// [`LineageDelta::between`]. `pool` carries the suspended d-tree
    /// frontiers between rounds, keyed by item index.
    ///
    /// A sequential pre-pass takes each item's pooled handle, fails closed
    /// on stale handles ([`ResumableConfidence::is_current`]), and absorbs
    /// the delta in place ([`ResumableConfidence::apply_delta`]). Items
    /// whose bounds still satisfy the error guarantee afterwards are served
    /// as zero-work snapshots and never reach the scheduler. The rest are
    /// routed to shards and ordered by **width regression** — how much the
    /// delta widened the item's interval (items needing a scratch recompile
    /// score the maximal 1.0) — so the items the stream dirtied hardest
    /// refine first. The scheduler then resumes the seeded frontiers (or
    /// recompiles, capturing fresh frontiers) exactly as in a batch run,
    /// deadline slicing and work stealing included; surviving handles
    /// return to `pool` and their width curves land in
    /// [`ClusterBatchResult::curves`].
    ///
    /// Unlike [`ClusterEngine::confidence_batch`], identical lineages are
    /// *not* deduplicated: two items with equal formulas may carry
    /// different deltas and different pooled frontiers. The Monte-Carlo
    /// methods have no incremental path — every item recompiles with its
    /// input-index seed, bit-identical to a batch over the same final
    /// lineages, and nothing is pooled.
    pub fn maintain_batch<L: AsRef<Dnf> + Sync>(
        &self,
        lineages: &[L],
        deltas: &[Option<LineageDelta>],
        space: &ProbabilitySpace,
        origins: Option<&VarOrigins>,
        pool: &mut ResumablePool,
    ) -> ClusterBatchResult {
        assert_eq!(lineages.len(), deltas.len(), "one delta slot per lineage");
        let start = Instant::now();
        let deadline = self.budget.timeout.map(|t| start + t);
        let lineages: Vec<&Dnf> = lineages.iter().map(AsRef::as_ref).collect();
        let n = lineages.len();

        // Pre-pass: absorb every delta into its pooled frontier and decide
        // per item whether any scheduling is needed at all.
        let mut initial_handles: Vec<Option<ResumableConfidence>> = Vec::with_capacity(n);
        let mut snapshot_results: Vec<Option<ConfidenceResult>> = vec![None; n];
        let mut curves: Vec<Option<Vec<(usize, f64)>>> = vec![None; n];
        let mut features: Vec<LineageFeatures> = vec![LineageFeatures::default(); n];
        let mut scores: Vec<f64> = vec![0.0; n];
        let mut work: Vec<usize> = Vec::new();
        for i in 0..n {
            let mut handle = if self.method.is_deterministic() { pool.take(i) } else { None };
            // Fail closed up front: a handle pinned to an invalidated space
            // can neither absorb a delta nor resume — recompiling
            // immediately avoids burning a slice on its poisoned bounds.
            if handle.as_ref().is_some_and(|h| !h.is_current(space)) {
                handle = None;
            }
            let width_before = handle.as_ref().map_or(0.0, ResumableConfidence::remaining_width);
            if let (Some(h), Some(delta)) = (handle.as_mut(), deltas[i].as_ref()) {
                if !delta.is_empty() && !h.apply_delta(space, delta) {
                    handle = None;
                }
            }
            match handle {
                Some(h) if h.is_converged() => {
                    // The delta left the bounds within the guarantee:
                    // zero-work snapshot; the frontier stays pooled for the
                    // next delta.
                    snapshot_results[i] = Some(h.snapshot_result());
                    curves[i] = Some(h.width_curve().to_vec());
                    pool.insert(i, h);
                    initial_handles.push(None);
                }
                Some(h) => {
                    features[i] = LineageFeatures::of(lineages[i]);
                    // Order dirtied items by how much the delta widened
                    // their interval — the regression this round must claw
                    // back.
                    scores[i] = (h.remaining_width() - width_before).max(0.0);
                    initial_handles.push(Some(h));
                    work.push(i);
                }
                None => {
                    features[i] = LineageFeatures::of(lineages[i]);
                    // Scratch recompiles forfeit all prior refinement: the
                    // maximal regression an interval can suffer.
                    scores[i] = 1.0;
                    initial_handles.push(None);
                    work.push(i);
                }
            }
        }

        let shards = self.shards;
        let queues: Vec<Vec<usize>> = if shards == 1 {
            vec![work.clone()]
        } else {
            let items: Vec<RouteItem<'_>> = work
                .iter()
                .map(|&index| RouteItem {
                    index,
                    lineage: lineages[index],
                    hash: lineages[index].canonical_hash(),
                    score: scores[index],
                })
                .collect();
            ShardRouter::new(self.partitioner.as_ref(), shards).route(&items)
        };

        let (owned, per_shard) = self.cache_setup();
        let cache_refs: Vec<Option<&SubformulaCache>> =
            per_shard.iter().map(|slot| slot.map(|k| owned[k].as_ref())).collect();
        let before: Vec<CacheStats> = owned.iter().map(|c| c.stats()).collect();
        let engine = self.shard_engine();
        let cobs = scheduler::ClusterObs::new(&self.obs);

        let ctx = scheduler::RunContext {
            lineages: &lineages,
            space,
            origins,
            features: &features,
            scores: &scores,
            engine: &engine,
            estimator: &self.estimator,
            caches: &cache_refs,
            policy: self.policy,
            deadline,
            max_rounds: self.max_rounds,
            max_work: self.budget.max_work,
            // Maintenance always captures: surviving frontiers outlive the
            // run in the caller's pool, making the *next* round's deltas
            // cheap.
            capture: true,
            obs: &cobs,
            fault: &self.fault,
        };
        let outcome = scheduler::execute(&ctx, queues, initial_handles);

        let after: Vec<CacheStats> = owned.iter().map(|c| c.stats()).collect();
        let deltas_stats: Vec<CacheStats> =
            after.iter().zip(&before).map(|(a, b)| a.since(b)).collect();
        let shard_stats: Vec<ShardStats> = outcome
            .shards
            .iter()
            .enumerate()
            .map(|(shard, acc)| ShardStats {
                shard,
                assigned: acc.assigned,
                executed: acc.executed,
                stolen: acc.stolen,
                resumed: acc.resumed,
                migrated: acc.migrated,
                deaths: acc.deaths,
                compute: acc.compute,
                cache: match self.topology {
                    CacheTopology::PerShard => deltas_stats.get(shard).cloned().unwrap_or_default(),
                    _ => CacheStats::default(),
                },
            })
            .collect();

        // Harvest the surviving frontiers back into the pool and record
        // their refinement curves; snapshot items recorded theirs in the
        // pre-pass.
        for (i, h) in outcome.handles.into_iter().enumerate() {
            if let Some(h) = h {
                curves[i] = Some(h.width_curve().to_vec());
                pool.insert(i, h);
            }
        }

        let mut slots = outcome.results;
        for (i, snap) in snapshot_results.into_iter().enumerate() {
            if let Some(r) = snap {
                debug_assert!(slots[i].is_none(), "snapshot items are never scheduled");
                slots[i] = Some(r);
            }
        }

        ClusterBatchResult {
            results: slots.into_iter().map(|r| r.expect("maintenance fills every slot")).collect(),
            wall: start.elapsed(),
            shards: shard_stats,
            cache: merge_cache_stats(deltas_stats),
            rounds: outcome.rounds,
            curves,
        }
    }

    /// Instantiates the cache topology for one run: `owned` keeps per-batch
    /// caches alive, `per_shard[s]` indexes each shard's cache in it
    /// (`None` = caching disabled for that shard).
    fn cache_setup(&self) -> (Vec<Arc<SubformulaCache>>, Vec<Option<usize>>) {
        let shards = self.shards;
        match &self.topology {
            CacheTopology::Shared => {
                (vec![Arc::new(SubformulaCache::new())], vec![Some(0); shards])
            }
            CacheTopology::PerShard => (
                (0..shards).map(|_| Arc::new(SubformulaCache::new())).collect(),
                (0..shards).map(Some).collect(),
            ),
            CacheTopology::External(c) => (vec![Arc::clone(c)], vec![Some(0); shards]),
            CacheTopology::Disabled => (Vec::new(), vec![None; shards]),
        }
    }

    /// The per-item engine behind every shard worker: the cluster scheduler
    /// owns the deadline, so shard engines run with `timeout = None` and
    /// get per-item deadlines through `compute_item`.
    fn shard_engine(&self) -> ConfidenceEngine {
        let mut engine = ConfidenceEngine::new(self.method.clone())
            .with_budget(ConfidenceBudget { timeout: None, max_work: self.budget.max_work })
            .with_threads(1)
            .with_obs(&self.obs);
        if let Some(seed) = self.seed {
            engine = engine.with_seed(seed);
        }
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::Clause;

    fn mixed_batch() -> (ProbabilitySpace, Vec<Dnf>) {
        let mut space = ProbabilitySpace::new();
        let mut lineages = Vec::new();
        for k in 0..8 {
            let len = if k % 2 == 0 { 2 } else { 6 };
            let vars: Vec<_> = (0..=len)
                .map(|i| space.add_bool(format!("v{k}_{i}"), 0.2 + 0.05 * (i % 5) as f64))
                .collect();
            lineages.push(Dnf::from_clauses(
                (0..len).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])),
            ));
        }
        (space, lineages)
    }

    #[test]
    fn empty_batch_is_empty() {
        let cluster = ClusterEngine::new(ConfidenceMethod::DTreeExact).with_shards(3);
        let out = cluster.confidence_batch::<Dnf>(&[], &ProbabilitySpace::new(), None);
        assert!(out.results.is_empty());
        assert!(out.all_converged());
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn cluster_matches_single_engine_bitwise_for_deterministic_methods() {
        let (space, lineages) = mixed_batch();
        for method in [
            ConfidenceMethod::DTreeExact,
            ConfidenceMethod::DTreeAbsolute(0.01),
            ConfidenceMethod::DTreeRelative(0.01),
        ] {
            let single =
                ConfidenceEngine::new(method.clone()).confidence_batch(&lineages, &space, None);
            for shards in [1, 2, 5] {
                let out = ClusterEngine::new(method.clone())
                    .with_shards(shards)
                    .confidence_batch(&lineages, &space, None);
                assert_eq!(out.results.len(), lineages.len());
                for (want, got) in single.results.iter().zip(&out.results) {
                    assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
                    assert_eq!(want.lower.to_bits(), got.lower.to_bits());
                    assert_eq!(want.upper.to_bits(), got.upper.to_bits());
                    assert_eq!(want.converged, got.converged);
                }
            }
        }
    }

    #[test]
    fn seeded_monte_carlo_is_reproducible_across_shard_counts_and_policies() {
        let (space, lineages) = mixed_batch();
        let method = ConfidenceMethod::KarpLuby { epsilon: 0.2, delta: 0.05 };
        let single = ConfidenceEngine::new(method.clone())
            .with_seed(0xc1a5)
            .confidence_batch(&lineages, &space, None);
        for (shards, policy) in [
            (1, SchedulePolicy::HardestFirst),
            (3, SchedulePolicy::HardestFirst),
            (3, SchedulePolicy::InputOrder),
        ] {
            let out = ClusterEngine::new(method.clone())
                .with_seed(0xc1a5)
                .with_shards(shards)
                .with_policy(policy)
                .confidence_batch(&lineages, &space, None);
            for (want, got) in single.results.iter().zip(&out.results) {
                assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let (space, lineages) = mixed_batch();
        let cluster = ClusterEngine::new(ConfidenceMethod::DTreeExact).with_shards(0);
        assert_eq!(cluster.shards(), 1);
        let out = cluster.confidence_batch(&lineages, &space, None);
        assert_eq!(out.results.len(), lineages.len());
        assert!(out.all_converged());
        assert_eq!(out.shards.len(), 1);
    }

    #[test]
    fn cache_topologies_agree_and_report_stats() {
        let (space, lineages) = mixed_batch();
        let method = ConfidenceMethod::DTreeAbsolute(0.001);
        let baseline = ClusterEngine::new(method.clone())
            .without_cache()
            .confidence_batch(&lineages, &space, None);
        assert_eq!(baseline.cache, CacheStats::default());
        for topology in [CacheTopology::Shared, CacheTopology::PerShard] {
            let out = ClusterEngine::new(method.clone())
                .with_shards(3)
                .with_cache_topology(topology)
                .confidence_batch(&lineages, &space, None);
            for (want, got) in baseline.results.iter().zip(&out.results) {
                assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
            }
            assert!(
                out.cache.hits + out.cache.misses > 0,
                "an enabled cache must see traffic: {:?}",
                out.cache
            );
        }
        // External cache: warm across batches.
        let external = Arc::new(SubformulaCache::new());
        let engine = ClusterEngine::new(method).with_shared_cache(Arc::clone(&external));
        let cold = engine.confidence_batch(&lineages, &space, None);
        let warm = engine.confidence_batch(&lineages, &space, None);
        assert!(warm.cache.hit_rate() > cold.cache.hit_rate());
        for (want, got) in baseline.results.iter().zip(&warm.results) {
            assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
        }
    }

    #[test]
    fn size_balanced_partitioner_spreads_work() {
        let (space, lineages) = mixed_batch();
        let out = ClusterEngine::new(ConfidenceMethod::DTreeExact)
            .with_shards(4)
            .with_partitioner(Arc::new(SizeBalancedPartitioner))
            .confidence_batch(&lineages, &space, None);
        assert!(out.all_converged());
        let assigned: Vec<usize> = out.shards.iter().map(|s| s.assigned).collect();
        assert_eq!(assigned.iter().sum::<usize>(), lineages.len());
        assert!(assigned.iter().all(|&a| a >= 1), "LPT should use all shards: {assigned:?}");
    }

    #[test]
    fn estimator_calibrates_from_batch_observations() {
        let (space, lineages) = mixed_batch();
        let cluster = ClusterEngine::new(ConfidenceMethod::DTreeExact).with_shards(2);
        assert_eq!(cluster.estimator().observations(), 0);
        cluster.confidence_batch(&lineages, &space, None);
        assert!(
            cluster.estimator().observations() >= lineages.len() as u64,
            "every d-tree item should calibrate the estimator"
        );
    }

    #[test]
    fn expired_deadline_returns_promptly_and_soundly() {
        let (space, lineages) = mixed_batch();
        let cluster = ClusterEngine::new(ConfidenceMethod::DTreeRelative(0.001))
            .with_shards(2)
            .with_budget(ConfidenceBudget { timeout: Some(Duration::ZERO), max_work: None });
        let t0 = Instant::now();
        let out = cluster.confidence_batch(&lineages, &space, None);
        assert!(t0.elapsed() < Duration::from_secs(2));
        assert_eq!(out.results.len(), lineages.len());
        for r in &out.results {
            assert!(!r.converged);
            assert!((0.0..=1.0).contains(&r.lower) && (0.0..=1.0).contains(&r.upper));
        }
    }

    /// Refinement rounds resume suspended d-tree frontiers instead of
    /// re-running items from scratch: a per-item step budget truncates every
    /// first run, and the rounds that follow must (a) be counted as resumed
    /// executions and (b) still reach the exact answers an unbudgeted engine
    /// computes.
    #[test]
    fn refinement_rounds_resume_suspended_frontiers() {
        let mut space = ProbabilitySpace::new();
        let mut lineages = Vec::new();
        for k in 0..4 {
            let vars: Vec<_> = (0..40)
                .map(|i| space.add_bool(format!("h{k}_{i}"), 0.15 + 0.02 * ((i + k) % 20) as f64))
                .collect();
            lineages.push(Dnf::from_clauses(
                (0..39).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])),
            ));
        }
        let reference = ConfidenceEngine::new(ConfidenceMethod::DTreeExact)
            .confidence_batch(&lineages, &space, None);
        let out = ClusterEngine::new(ConfidenceMethod::DTreeExact)
            .with_shards(2)
            .with_max_rounds(3)
            .with_budget(ConfidenceBudget {
                timeout: Some(Duration::from_secs(2)),
                max_work: Some(3),
            })
            .confidence_batch(&lineages, &space, None);
        assert_eq!(out.results.len(), lineages.len());
        for r in &out.results {
            assert!(r.lower <= r.upper && (0.0..=1.0).contains(&r.lower), "unsound: {r:?}");
        }
        // Round 1 truncates every item at 3 steps, so with ~2s of runway a
        // second round must have run — by resuming, not recompiling.
        if out.rounds > 1 {
            assert!(out.total_resumed() > 0, "rounds after the first must resume: {out:?}");
        }
        for (r, want) in out.results.iter().zip(&reference.results) {
            if r.converged {
                assert!(
                    (r.estimate - want.estimate).abs() < 1e-9,
                    "resumed exact run diverged: {} vs {}",
                    r.estimate,
                    want.estimate
                );
            }
        }
    }

    /// Chain lineages over a shared space, hard enough that a small step
    /// budget truncates — the streaming-maintenance fixture.
    fn streaming_fixture() -> (ProbabilitySpace, Vec<Dnf>) {
        let mut space = ProbabilitySpace::new();
        let vars: Vec<_> =
            (0..34).map(|i| space.add_bool(format!("x{i}"), 0.15 + 0.02 * i as f64)).collect();
        let lineages: Vec<Dnf> = (0..3)
            .map(|k| {
                Dnf::from_clauses(
                    (0..22)
                        .map(|i| Clause::from_bools(&[vars[i + k], vars[i + k + 1]]))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        (space, lineages)
    }

    /// The sharded maintenance round must take the same per-item paths as
    /// the flat engine — recompile on first sight, resume pooled frontiers
    /// after appends, snapshot unchanged items — and converge to the exact
    /// probabilities of the grown formulas.
    #[test]
    fn maintain_batch_resumes_pooled_frontiers_across_rounds() {
        let (mut space, mut lineages) = streaming_fixture();
        let cluster = ClusterEngine::new(ConfidenceMethod::DTreeExact).with_shards(2);
        let mut pool = ResumablePool::new(8);
        // Round 0: first sight under a step budget — every item compiles
        // from scratch, truncates, and parks its frontier in the pool.
        let none: Vec<Option<events::LineageDelta>> = vec![None; lineages.len()];
        let warm = cluster
            .clone()
            .with_budget(ConfidenceBudget { timeout: None, max_work: Some(4) })
            .maintain_batch(&lineages, &none, &space, None, &mut pool);
        assert_eq!(warm.total_resumed(), 0);
        assert!(!warm.all_converged());
        assert_eq!(pool.len(), lineages.len(), "truncated frontiers are pooled");
        // Round 1: append one fresh independent clause and one bridging
        // clause per item, then maintain with an unlimited budget.
        let mut deltas = Vec::new();
        for (i, lineage) in lineages.iter_mut().enumerate() {
            let fresh = space.add_bool(format!("t{i}"), 0.35);
            let old = lineage
                .clauses()
                .first()
                .and_then(|c| c.vars().next())
                .expect("chain lineage has variables");
            let grown = lineage.or(&Dnf::from_clauses(vec![
                Clause::from_bools(&[fresh]),
                Clause::from_bools(&[old, fresh]),
            ]));
            let delta = events::LineageDelta::between(lineage, &grown).expect("append-only growth");
            assert!(!delta.is_empty());
            deltas.push(Some(delta));
            *lineage = grown;
        }
        let r1 = cluster.maintain_batch(&lineages, &deltas, &space, None, &mut pool);
        assert_eq!(
            r1.total_resumed(),
            lineages.len(),
            "pooled frontiers must absorb the deltas and resume: {r1:?}"
        );
        assert!(r1.all_converged());
        for (lineage, got) in lineages.iter().zip(&r1.results) {
            let exact = lineage.exact_probability_enumeration(&space);
            assert!(
                (got.estimate - exact).abs() < 1e-9,
                "maintained {} vs exact {exact}",
                got.estimate
            );
        }
        for curve in &r1.curves {
            let curve = curve.as_ref().expect("maintenance harvests every frontier's curve");
            assert!(curve.len() >= 2, "curve records capture + resume samples: {curve:?}");
        }
        assert_eq!(pool.len(), lineages.len(), "converged frontiers stay pooled");
        // Round 2: nothing changed — pure snapshots, no scheduling at all.
        let none: Vec<Option<events::LineageDelta>> = vec![None; lineages.len()];
        let r2 = cluster.maintain_batch(&lineages, &none, &space, None, &mut pool);
        assert_eq!(r2.shards.iter().map(|s| s.executed).sum::<usize>(), 0);
        assert!(r2.all_converged());
        for (a, b) in r1.results.iter().zip(&r2.results) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(b.elapsed, Duration::ZERO);
        }
        assert!(r2.curves.iter().all(Option::is_some));
    }

    /// Space invalidation between rounds poisons every pooled frontier; the
    /// next maintenance round must fail closed into scratch recompilation
    /// and still produce correct, converged answers.
    #[test]
    fn maintain_batch_fails_closed_on_invalidation() {
        let (mut space, lineages) = streaming_fixture();
        let cluster = ClusterEngine::new(ConfidenceMethod::DTreeExact).with_shards(2);
        let mut pool = ResumablePool::new(8);
        let none: Vec<Option<events::LineageDelta>> = vec![None; lineages.len()];
        cluster
            .clone()
            .with_budget(ConfidenceBudget { timeout: None, max_work: Some(4) })
            .maintain_batch(&lineages, &none, &space, None, &mut pool);
        assert!(!pool.is_empty());
        space.invalidate(); // in-place change: every pooled frontier is stale
        let out = cluster.maintain_batch(&lineages, &none, &space, None, &mut pool);
        assert_eq!(out.total_resumed(), 0, "stale frontiers must not be resumed: {out:?}");
        assert_eq!(
            out.shards.iter().map(|s| s.executed).sum::<usize>(),
            lineages.len(),
            "every item recompiles from scratch"
        );
        assert!(out.all_converged());
        for (lineage, got) in lineages.iter().zip(&out.results) {
            let exact = lineage.exact_probability_enumeration(&space);
            assert!((got.estimate - exact).abs() < 1e-9);
        }
    }

    /// Monte-Carlo methods have no incremental path: maintenance recomputes
    /// every item with its input-index seed, bit-identical to a plain batch
    /// over the same final lineages, and pools nothing.
    #[test]
    fn maintain_batch_monte_carlo_matches_plain_batch_bitwise() {
        let (space, lineages) = mixed_batch();
        let method = ConfidenceMethod::KarpLuby { epsilon: 0.2, delta: 0.05 };
        let cluster = ClusterEngine::new(method).with_seed(0xbeef).with_shards(3);
        let plain = cluster.confidence_batch(&lineages, &space, None);
        let mut pool = ResumablePool::new(8);
        let none: Vec<Option<events::LineageDelta>> = vec![None; lineages.len()];
        let maintained = cluster.maintain_batch(&lineages, &none, &space, None, &mut pool);
        for (want, got) in plain.results.iter().zip(&maintained.results) {
            assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
        }
        assert!(pool.is_empty(), "Monte-Carlo items are never pooled");
        assert!(maintained.curves.iter().all(Option::is_none));
    }

    /// Satellite of the failure model: a worker panic kills its shard for
    /// the round, the panicked item is retried exactly once on a surviving
    /// shard, and — the retry having succeeded — the batch is bit-identical
    /// to a fault-free run. Zero degraded results, one counted death.
    #[test]
    fn one_shard_death_retries_the_item_elsewhere_and_loses_nothing() {
        use pdb::fault::{FaultPlan, FaultPolicy};
        let (space, lineages) = mixed_batch();
        let method = ConfidenceMethod::DTreeAbsolute(0.01);
        let clean = ClusterEngine::new(method.clone())
            .with_shards(2)
            .confidence_batch(&lineages, &space, None);
        let fault =
            FaultPlan::new(7).on("cluster.worker", FaultPolicy::PanicTimes { count: 1 }).build();
        let out = ClusterEngine::new(method)
            .with_shards(2)
            .with_fault(&fault)
            .confidence_batch(&lineages, &space, None);
        assert_eq!(fault.injected(), 1, "the schedule must actually fire");
        assert_eq!(out.total_deaths(), 1, "one worker panic, one counted death");
        assert_eq!(out.degraded_count(), 0, "the retry on the surviving shard succeeds");
        assert_eq!(out.results.len(), lineages.len());
        for (want, got) in clean.results.iter().zip(&out.results) {
            assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
            assert_eq!(want.lower.to_bits(), got.lower.to_bits());
            assert_eq!(want.upper.to_bits(), got.upper.to_bits());
        }
    }

    /// When every execution panics, both workers die, the exactly-once retry
    /// budget is spent, and the backstop degrades every item to the vacuous
    /// interval — the batch still returns a full, valid answer set.
    #[test]
    fn total_shard_loss_degrades_every_item_instead_of_panicking() {
        use pdb::confidence::DegradationReason;
        use pdb::fault::{FaultPlan, FaultPolicy};
        let (space, lineages) = mixed_batch();
        let fault = FaultPlan::new(7)
            .on("cluster.worker", FaultPolicy::PanicTimes { count: u64::MAX })
            .build();
        let out = ClusterEngine::new(ConfidenceMethod::DTreeAbsolute(0.01))
            .with_shards(2)
            .with_fault(&fault)
            .confidence_batch(&lineages, &space, None);
        assert_eq!(out.results.len(), lineages.len(), "no item may be lost");
        for r in &out.results {
            assert_eq!(r.degraded, Some(DegradationReason::ShardLost));
            assert!(!r.converged);
            assert_eq!((r.lower, r.upper), (0.0, 1.0), "degraded bounds stay sound");
        }
        assert!(out.total_deaths() >= 2, "both workers died: {}", out.total_deaths());
    }

    /// The headline robustness guarantee: killing one of four shards in the
    /// middle of a batch loses zero items — every lineage still reports a
    /// result, and (the retry succeeding) every value matches the fault-free
    /// run bit for bit.
    #[test]
    fn killing_one_of_four_shards_mid_batch_loses_zero_items() {
        use events::Clause;
        use pdb::fault::{FaultPlan, FaultPolicy};
        // A larger batch so the death lands mid-flight with plenty of
        // pending work in the dead shard's queue for the survivors to drain.
        let mut space = ProbabilitySpace::new();
        let mut lineages = Vec::new();
        for k in 0..16 {
            let len = 3 + k % 4;
            let vars: Vec<_> = (0..=len)
                .map(|i| space.add_bool(format!("w{k}_{i}"), 0.2 + 0.04 * (i % 7) as f64))
                .collect();
            lineages.push(Dnf::from_clauses(
                (0..len).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])),
            ));
        }
        let method = ConfidenceMethod::DTreeExact;
        let clean = ClusterEngine::new(method.clone())
            .with_shards(4)
            .confidence_batch(&lineages, &space, None);
        let fault =
            FaultPlan::new(11).on("cluster.worker", FaultPolicy::PanicTimes { count: 1 }).build();
        let out = ClusterEngine::new(method)
            .with_shards(4)
            .with_fault(&fault)
            .confidence_batch(&lineages, &space, None);
        assert_eq!(out.total_deaths(), 1);
        assert_eq!(out.degraded_count(), 0);
        assert_eq!(out.results.len(), lineages.len(), "zero items lost");
        for (want, got) in clean.results.iter().zip(&out.results) {
            assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
            assert_eq!(want.converged, got.converged);
        }
    }

    /// Shard deaths during maintenance rounds must not lose items either:
    /// the degraded item keeps a valid (vacuous) result and the *next*
    /// fault-free round recompiles it back to the exact answer.
    #[test]
    fn maintenance_recovers_items_degraded_by_a_dead_shard() {
        use pdb::fault::{FaultPlan, FaultPolicy};
        let (space, lineages) = streaming_fixture();
        let fault = FaultPlan::new(3)
            .on("cluster.worker", FaultPolicy::PanicTimes { count: u64::MAX })
            .build();
        let cluster = ClusterEngine::new(ConfidenceMethod::DTreeExact).with_shards(2);
        let mut pool = ResumablePool::new(8);
        let none: Vec<Option<events::LineageDelta>> = vec![None; lineages.len()];
        // Round 0 under total shard loss: everything degrades, nothing is
        // lost, nothing panics out.
        let hurt = cluster
            .clone()
            .with_fault(&fault)
            .maintain_batch(&lineages, &none, &space, None, &mut pool);
        assert_eq!(hurt.results.len(), lineages.len());
        assert_eq!(hurt.degraded_count(), lineages.len());
        // Round 1 without faults: every item recompiles from scratch and
        // reaches the exact answers.
        let healed = cluster.maintain_batch(&lineages, &none, &space, None, &mut pool);
        assert_eq!(healed.degraded_count(), 0);
        assert!(healed.all_converged());
        for (lineage, got) in lineages.iter().zip(&healed.results) {
            let exact = lineage.exact_probability_enumeration(&space);
            assert!((got.estimate - exact).abs() < 1e-9);
        }
    }

    #[test]
    fn into_batch_result_flattens() {
        let (space, lineages) = mixed_batch();
        let out = ClusterEngine::new(ConfidenceMethod::DTreeExact)
            .confidence_batch(&lineages, &space, None);
        let n = out.results.len();
        let cache = out.cache;
        let batch = out.into_batch_result();
        assert_eq!(batch.results.len(), n);
        assert_eq!(batch.cache, cache);
    }
}
