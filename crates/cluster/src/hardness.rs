//! Structural hardness estimation for lineage DNFs.
//!
//! Under a shared deadline, *which lineage is refined first* dominates result
//! quality (the anytime-approximation literature; see ROADMAP). Scheduling
//! needs a hardness signal that is far cheaper than compiling the lineage:
//! the [`HardnessEstimator`] scores a [`Dnf`] from structural features alone
//! — clause/variable counts, maximum clause width, duplicate-atom density —
//! in one linear pass, and *calibrates* those scores against the
//! [`CompileStats::work`] counters that finished runs export, so the ordering
//! improves as the cluster observes real workloads.

use std::sync::Mutex;

use dtree::CompileStats;
use events::Dnf;

/// Cheap structural features of a lineage DNF, extractable in one pass
/// without compiling it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LineageFeatures {
    /// Number of clauses.
    pub clauses: usize,
    /// Number of distinct variables.
    pub variables: usize,
    /// Total number of atoms across all clauses (the DNF "size").
    pub atoms: usize,
    /// Width of the widest clause.
    pub max_width: usize,
    /// Fraction of atom occurrences that repeat an already-seen variable:
    /// `1 − variables / atoms` (0 for the empty DNF). High density means
    /// variables are shared across clauses, which is what forces Shannon
    /// expansions — the decomposition's exponential case.
    pub duplicate_density: f64,
}

impl LineageFeatures {
    /// Extracts the features of a DNF in `O(size log size)` (one pass plus a
    /// sort-dedup for the distinct-variable count — cheaper than the
    /// tree-set the `Dnf` accessors build, and this runs for every item of
    /// every batch).
    pub fn of(lineage: &Dnf) -> Self {
        let clauses = lineage.len();
        let mut max_width = 0;
        let mut vars: Vec<u32> = Vec::with_capacity(lineage.size());
        for clause in lineage.clauses() {
            max_width = max_width.max(clause.len());
            vars.extend(clause.vars().map(|v| v.0));
        }
        let atoms = vars.len();
        vars.sort_unstable();
        vars.dedup();
        let variables = vars.len();
        let duplicate_density =
            if atoms == 0 { 0.0 } else { 1.0 - variables as f64 / atoms as f64 };
        LineageFeatures { clauses, variables, atoms, max_width, duplicate_density }
    }

    /// The uncalibrated structural score: monotone in every feature that
    /// makes d-tree decomposition expensive. Independent clauses decompose in
    /// near-linear time, so the base cost is the atom count; shared variables
    /// force Shannon expansions whose cost compounds with the number of
    /// entangled variables, modelled by the `duplicate_density · variables`
    /// term; wide clauses weaken the bucket bounds (more refinement steps),
    /// contributing the `max_width` factor.
    pub fn raw_score(&self) -> f64 {
        if self.clauses == 0 {
            return 0.0;
        }
        let entangled = 1.0 + self.duplicate_density * self.variables as f64;
        self.atoms as f64 * entangled * (1.0 + self.max_width as f64).ln()
    }

    /// Bucket index used for calibration: lineages of similar size share a
    /// correction factor (log₂ of the atom count, capped — not wrapped, so a
    /// huge lineage can never alias into a tiny lineage's bucket and corrupt
    /// its factor).
    fn bucket(&self) -> usize {
        ((usize::BITS - self.atoms.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

const NUM_BUCKETS: usize = 24;

/// Exponentially weighted calibration state for one size bucket.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// EWMA of `observed_work / raw_score` for lineages in this bucket.
    factor: f64,
    /// Number of observations folded in (saturating; drives the EWMA gain).
    observations: u64,
}

impl Default for Bucket {
    fn default() -> Self {
        Bucket { factor: 1.0, observations: 0 }
    }
}

/// Scores lineage hardness from structural features, calibrated online
/// against observed [`CompileStats::work`] counters.
///
/// Thread-safe: shard workers [`observe`](HardnessEstimator::observe)
/// concurrently while the router [`score`](HardnessEstimator::score)s the
/// next batch. Scores are only used for *ordering and balancing* — they
/// never affect computed probabilities — so a stale factor costs schedule
/// quality, not correctness.
#[derive(Debug, Default)]
pub struct HardnessEstimator {
    buckets: Mutex<[Bucket; NUM_BUCKETS]>,
    /// Write-only calibration-error tracking (see
    /// [`HardnessEstimator::attach_obs`]); never read back, so observability
    /// cannot perturb scores.
    obs: obs::Obs,
    observed: obs::Counter,
}

impl HardnessEstimator {
    /// A fresh estimator with neutral calibration (factor 1 everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches observability: every [`HardnessEstimator::observe`] call
    /// records its calibration ratio — observed [`CompileStats::work`] over
    /// the score predicted *before* folding the observation in — into the
    /// per-size-bucket histogram `cluster.hardness.calib_ratio.bNN`, plus a
    /// `cluster.hardness.observations` counter. A bucket histogram centered
    /// on 1 means the estimator's ordering can be trusted for that size
    /// class (the precondition for hardness-weighted scheduler slices).
    pub fn attach_obs(&mut self, o: &obs::Obs) {
        self.obs = o.clone();
        self.observed = o.counter("cluster.hardness.observations");
    }

    /// Scores a lineage: higher means expected-harder. Deterministic given
    /// the same calibration state.
    pub fn score(&self, lineage: &Dnf) -> f64 {
        self.score_features(&LineageFeatures::of(lineage))
    }

    /// [`score`](HardnessEstimator::score) when the caller already extracted
    /// the features.
    pub fn score_features(&self, features: &LineageFeatures) -> f64 {
        let raw = features.raw_score();
        if raw == 0.0 {
            return 0.0;
        }
        let factor =
            self.buckets.lock().expect("estimator poisoned")[features.bucket()].factor.max(0.0);
        raw * factor
    }

    /// Scores a *suspended* item for a refinement round. The remaining bound
    /// width `U − L` is the quantity a resumed slice actually shrinks, so it
    /// dominates the ordering; the calibrated structural score enters
    /// logarithmically as a tiebreaker, so that among items of similar width
    /// the structurally harder frontier (more work behind every percentage
    /// point of tightening) still starts first. An already-converged item
    /// (width 0) scores 0 and sorts last under hardest-first.
    pub fn refinement_score(&self, features: &LineageFeatures, remaining_width: f64) -> f64 {
        remaining_width.clamp(0.0, 1.0) * (1.0 + self.score_features(features).max(0.0).ln_1p())
    }

    /// Folds the observed decomposition effort of one finished run into the
    /// calibration state. `stats` is the run's exported [`CompileStats`]
    /// (d-tree methods only; Monte-Carlo runs export none and are simply not
    /// observed).
    ///
    /// Runs that were mostly served from a warm sub-formula cache are
    /// skipped: [`CompileStats::work`] deliberately excludes memo hits, so a
    /// hard lineage re-run warm reports near-zero work — folding that in
    /// would drive the bucket's factor toward zero and make genuinely hard
    /// *cold* lineages score easy, inverting the schedule right when a
    /// mutation runs the cache cold.
    pub fn observe(&self, features: &LineageFeatures, stats: &CompileStats) {
        let raw = features.raw_score();
        let work = stats.work();
        if raw <= 0.0 || work == 0 {
            return;
        }
        let hits = stats.exact_cache_hits + stats.bound_cache_hits;
        if hits > work {
            return;
        }
        let ratio = work as f64 / raw;
        let mut buckets = self.buckets.lock().expect("estimator poisoned");
        let b = &mut buckets[features.bucket()];
        if self.obs.is_enabled() {
            // Calibration error against the *pre-update* prediction: the
            // score this run would have been scheduled by.
            let predicted = raw * b.factor.max(0.0);
            if predicted > 0.0 {
                self.obs
                    .histogram(&format!("cluster.hardness.calib_ratio.b{:02}", features.bucket()))
                    .record(work as f64 / predicted);
            }
            self.observed.inc();
        }
        // EWMA with a gain that starts at 1 (adopt the first observation
        // outright) and settles to 1/16 (track drift without jitter).
        let gain = 1.0 / (b.observations.min(15) + 1) as f64;
        b.factor += gain * (ratio - b.factor);
        b.observations = b.observations.saturating_add(1);
    }

    /// Total number of observations folded into the calibration state.
    pub fn observations(&self) -> u64 {
        self.buckets.lock().expect("estimator poisoned").iter().map(|b| b.observations).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::{Clause, ProbabilitySpace};

    /// A chain DNF {x_i, x_{i+1}} of `n` clauses over fresh variables.
    fn chain(space: &mut ProbabilitySpace, n: usize, tag: &str) -> Dnf {
        let vars: Vec<_> = (0..=n)
            .map(|i| space.add_bool(format!("{tag}{i}"), 0.3 + 0.01 * (i % 7) as f64))
            .collect();
        Dnf::from_clauses((0..n).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])))
    }

    #[test]
    fn features_of_a_chain() {
        let mut s = ProbabilitySpace::new();
        let phi = chain(&mut s, 10, "x");
        let f = LineageFeatures::of(&phi);
        assert_eq!(f.clauses, 10);
        assert_eq!(f.variables, 11);
        assert_eq!(f.atoms, 20);
        assert_eq!(f.max_width, 2);
        assert!((f.duplicate_density - (1.0 - 11.0 / 20.0)).abs() < 1e-12);
    }

    #[test]
    fn trivial_lineages_score_zero() {
        let est = HardnessEstimator::new();
        assert_eq!(est.score(&Dnf::empty()), 0.0);
        let f = LineageFeatures::of(&Dnf::tautology());
        // A tautology has one empty clause: zero atoms, zero raw score.
        assert_eq!(f.atoms, 0);
        assert_eq!(est.score(&Dnf::tautology()), 0.0);
    }

    #[test]
    fn longer_chains_score_harder() {
        let mut s = ProbabilitySpace::new();
        let easy = chain(&mut s, 3, "e");
        let hard = chain(&mut s, 30, "h");
        let est = HardnessEstimator::new();
        assert!(est.score(&hard) > est.score(&easy));
    }

    #[test]
    fn shared_variables_score_harder_than_independent_clauses() {
        let mut s = ProbabilitySpace::new();
        let shared: Vec<_> = (0..8).map(|i| s.add_bool(format!("s{i}"), 0.4)).collect();
        // Same clause count and width; one DNF reuses variables across
        // clauses (Shannon expansions), the other is fully independent.
        let entangled = Dnf::from_clauses(
            (0..12).map(|i| Clause::from_bools(&[shared[i % 8], shared[(i + 3) % 8]])),
        );
        let fresh: Vec<_> = (0..24).map(|i| s.add_bool(format!("f{i}"), 0.4)).collect();
        let independent = Dnf::from_clauses(
            (0..12).map(|i| Clause::from_bools(&[fresh[2 * i], fresh[2 * i + 1]])),
        );
        let est = HardnessEstimator::new();
        assert!(est.score(&entangled) > est.score(&independent));
    }

    #[test]
    fn observation_calibrates_the_bucket() {
        let mut s = ProbabilitySpace::new();
        let phi = chain(&mut s, 10, "x");
        let f = LineageFeatures::of(&phi);
        let est = HardnessEstimator::new();
        let before = est.score_features(&f);
        // Report work far above the raw score: the factor must rise.
        let stats = CompileStats { or_nodes: 10_000, ..Default::default() };
        est.observe(&f, &stats);
        let after = est.score_features(&f);
        assert!(after > before, "calibration must scale the score up: {before} -> {after}");
        assert_eq!(est.observations(), 1);
        // Lineages in a different size bucket are unaffected.
        let other = chain(&mut s, 300, "y");
        let est2 = HardnessEstimator::new();
        assert_eq!(est.score(&other), est2.score(&other));
    }

    #[test]
    fn warm_cache_dominated_runs_do_not_miscalibrate() {
        let mut s = ProbabilitySpace::new();
        let f = LineageFeatures::of(&chain(&mut s, 10, "x"));
        let est = HardnessEstimator::new();
        let before = est.score_features(&f);
        // A warm re-run: almost everything served from the memo, tiny work.
        let warm = CompileStats {
            exact_evaluations: 1,
            exact_cache_hits: 500,
            bound_cache_hits: 200,
            ..Default::default()
        };
        est.observe(&f, &warm);
        assert_eq!(est.observations(), 0, "cache-dominated runs must be ignored");
        assert_eq!(est.score_features(&f).to_bits(), before.to_bits());
        // A cold run with incidental hits still calibrates.
        let cold = CompileStats {
            or_nodes: 400,
            exact_evaluations: 100,
            exact_cache_hits: 30,
            ..Default::default()
        };
        est.observe(&f, &cold);
        assert_eq!(est.observations(), 1);
    }

    #[test]
    fn huge_lineages_cap_into_the_top_bucket_instead_of_wrapping() {
        // atoms ≥ 2^23 would wrap to bucket 0/1 under a modulo scheme and
        // corrupt the calibration of near-trivial lineages; the cap keeps
        // them in the top bucket.
        let huge = LineageFeatures {
            clauses: 1 << 22,
            variables: 1 << 22,
            atoms: 1 << 24,
            max_width: 3,
            duplicate_density: 0.5,
        };
        assert_eq!(huge.bucket(), NUM_BUCKETS - 1);
        let mut s = ProbabilitySpace::new();
        let tiny = LineageFeatures::of(&chain(&mut s, 1, "t"));
        assert!(tiny.bucket() < 4);
        // Observing the huge lineage leaves the tiny lineage's score alone.
        let est = HardnessEstimator::new();
        let before = est.score_features(&tiny);
        est.observe(&huge, &CompileStats { or_nodes: 1 << 30, ..Default::default() });
        assert_eq!(est.score_features(&tiny).to_bits(), before.to_bits());
    }
}
