//! The deadline-aware cluster scheduler: hardness-ordered shard queues,
//! proportional time slices, cross-shard work stealing, and refinement
//! rounds.
//!
//! # Why not "each item gets whatever time remains"?
//!
//! That is what a single [`pdb::ConfidenceEngine`] batch does, and it has a
//! failure mode under tight deadlines: whichever hard lineage runs first
//! consumes the entire remaining budget, and every item scheduled after it
//! short-circuits to a vacuous result — the tail starves. The cluster
//! scheduler instead degrades *uniformly*:
//!
//! 1. **Slices.** Each item's timeout is its proportional share of the time
//!    remaining: `remaining × workers / items_not_yet_started`, capped at
//!    `remaining`. Easy items converge well inside their slice and donate
//!    the leftover to everyone after them; hard items are truncated at the
//!    slice boundary instead of at the cluster deadline.
//! 2. **Hardest-first.** Within each shard, items run in descending
//!    estimated-hardness order, so the items that need the most refinement
//!    start while the budget — and the parallel capacity of the other
//!    shards — is still available, instead of surfacing as stragglers at
//!    the deadline.
//! 3. **Work stealing.** A shard whose queue drains steals the *tail* (the
//!    estimated-easiest pending item) of the fullest other shard, so a
//!    mis-partitioned batch still finishes together instead of one shard
//!    idling while another is buried.
//! 4. **Rounds.** If the deadline has not passed once every item has run,
//!    non-converged items are re-enqueued (hardest-first) and re-run with
//!    the now-larger slices; with a shared sub-formula cache the re-run
//!    resumes mostly warm. Rounds stop at the deadline, at
//!    [`max_rounds`](crate::ClusterEngine::with_max_rounds), or when
//!    everything converged.
//!
//! With no deadline at all, none of this machinery engages: every item runs
//! exactly once with an unbounded timeout, which is how the cluster stays
//! bit-identical to the unsharded engine.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use dtree::SubformulaCache;
use events::{Dnf, ProbabilitySpace, VarOrigins};
use pdb::confidence::{ConfidenceBudget, ConfidenceResult, DegradationReason, ResumableConfidence};
use pdb::fault::Fault;
use pdb::ConfidenceEngine;

use crate::hardness::{HardnessEstimator, LineageFeatures};

/// Slices shorter than this quantum cannot make refinement progress: the
/// per-item setup (DNF interning, frontier bookkeeping) eats them whole.
/// Items whose proportional share falls below it are handed an already
/// expired deadline — the engine's immediate non-converged path — and a
/// refinement round with less than a quantum of runway is not started at
/// all.
pub(crate) const MIN_SLICE: Duration = Duration::from_micros(500);

/// The order in which a shard works through its queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Descending estimated hardness (ties by input index). The default:
    /// hard lineages start while budget and parallel capacity remain.
    #[default]
    HardestFirst,
    /// The input order of the batch, as a plain engine would process it.
    /// Mainly useful as the baseline when measuring what hardness-aware
    /// ordering buys.
    InputOrder,
}

impl SchedulePolicy {
    /// Orders a queue of item indices in place according to the policy.
    pub(crate) fn order(&self, queue: &mut [usize], scores: &[f64]) {
        match self {
            SchedulePolicy::HardestFirst => {
                queue.sort_by(|&a, &b| {
                    scores[b]
                        .partial_cmp(&scores[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
            }
            SchedulePolicy::InputOrder => queue.sort_unstable(),
        }
    }
}

/// Pre-fetched observability handles for one scheduling run. All handles
/// are write-only no-ops when the engine has no [`obs::Obs`] attached, so
/// the scheduler's hot paths pay a branch on a `None`, nothing more.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClusterObs {
    pub obs: obs::Obs,
    /// `cluster.rounds`: scheduling rounds run (≥ 1 per batch).
    pub rounds: obs::Counter,
    /// `cluster.steals`: items a drained worker stole from another shard.
    pub steals: obs::Counter,
    /// `cluster.migrations`: suspended frontiers resumed on a shard other
    /// than the one whose worker last ran them.
    pub migrations: obs::Counter,
    /// `cluster.resumed`: executions served by resuming a frontier.
    pub resumed: obs::Counter,
    /// `cluster.shard_deaths`: worker panics caught by the scheduler (each
    /// kills its shard for the rest of the round; the item is retried once
    /// on another shard, then degraded).
    pub shard_deaths: obs::Counter,
    /// `cluster.deadline_slack_seconds`: time left on the cluster deadline
    /// when the schedule finished (0 = ran out).
    pub deadline_slack: obs::Histogram,
}

impl ClusterObs {
    pub fn new(o: &obs::Obs) -> ClusterObs {
        ClusterObs {
            obs: o.clone(),
            rounds: o.counter("cluster.rounds"),
            steals: o.counter("cluster.steals"),
            migrations: o.counter("cluster.migrations"),
            resumed: o.counter("cluster.resumed"),
            shard_deaths: o.counter("cluster.shard_deaths"),
            deadline_slack: o.histogram("cluster.deadline_slack_seconds"),
        }
    }
}

/// Everything one scheduling run needs, borrowed from the cluster engine.
pub(crate) struct RunContext<'a> {
    pub lineages: &'a [&'a Dnf],
    pub space: &'a ProbabilitySpace,
    pub origins: Option<&'a VarOrigins>,
    pub features: &'a [LineageFeatures],
    pub scores: &'a [f64],
    pub engine: &'a ConfidenceEngine,
    pub estimator: &'a HardnessEstimator,
    /// Per-shard cache handles (`None` = caching disabled for that shard).
    pub caches: &'a [Option<&'a SubformulaCache>],
    pub policy: SchedulePolicy,
    pub deadline: Option<Instant>,
    pub max_rounds: usize,
    /// Per-item step cap applied to *resumed* slices when no deadline is set
    /// (fresh runs get it through the engine's own budget).
    pub max_work: Option<u64>,
    /// Capture resumable frontiers for fresh d-tree runs. Batch mode turns
    /// this on only when refinement rounds could use the handle (deadline
    /// set, more than one round); maintenance mode always captures, because
    /// surviving handles outlive the run in the caller's pool.
    pub capture: bool,
    /// Pre-fetched metric/trace handles (no-ops when observability is off).
    pub obs: &'a ClusterObs,
    /// Fault-injection plan checked at the `"cluster.worker"` site once per
    /// item execution. The site uses the hit-counter token (a shard death is
    /// a property of the worker and the moment, not of the item), so a
    /// retried item redraws its fate on the surviving shard instead of
    /// deterministically dying again. [`Fault::disabled`] — the default —
    /// makes the check a free no-op.
    pub fault: &'a Fault,
}

/// Mutable per-shard counters accumulated over all rounds.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardAccum {
    pub assigned: usize,
    pub executed: usize,
    pub stolen: usize,
    /// Executions served by resuming a suspended d-tree frontier instead of
    /// recompiling the item from scratch.
    pub resumed: usize,
    /// Resumptions of a frontier whose previous slice ran on a *different*
    /// shard — suspended handles that work stealing (or refinement
    /// re-scoring) carried across the shard boundary.
    pub migrated: usize,
    /// Worker panics this shard's worker suffered (each one kills the worker
    /// for the rest of its round; see [`run_round`]).
    pub deaths: usize,
    pub compute: Duration,
}

/// One item's suspended-frontier slot: the handle (if any run parked one)
/// plus the shard whose worker last ran it. Steal-with-handle migration:
/// when a stealing worker resumes a handle owned by another shard, the
/// handle — not just the item — moves with the steal, and the hop is
/// counted as a migration before ownership rebinds to the thief.
#[derive(Debug, Default)]
pub(crate) struct HandleSlot {
    pub handle: Option<ResumableConfidence>,
    pub owner: Option<usize>,
}

/// Outcome of the scheduling run.
pub(crate) struct ScheduleOutcome {
    pub results: Vec<Option<ConfidenceResult>>,
    pub shards: Vec<ShardAccum>,
    pub rounds: usize,
    /// Per-item suspended frontiers that survived the run (converged handles
    /// included — their d-trees absorb the next round's deltas). Callers
    /// harvest width curves from them and return them to a cross-batch pool.
    pub handles: Vec<Option<ResumableConfidence>>,
}

/// `true` when `new` should replace `old` as an item's reported result:
/// convergence wins, then tighter bounds. A converged result is never
/// replaced, so deterministic methods report the round-1 result untouched.
fn improves(new: &ConfidenceResult, old: &ConfidenceResult) -> bool {
    if old.converged {
        return false;
    }
    if new.converged {
        return true;
    }
    (new.upper - new.lower) < (old.upper - old.lower)
}

/// Runs the whole schedule: rounds of stealing workers over shard queues.
/// `initial_handles` seeds the per-item frontier slots (one per item, `None`
/// when nothing is suspended); maintenance passes pre-delta'd pooled handles
/// here so scheduled items *resume* instead of recompiling.
pub(crate) fn execute(
    ctx: &RunContext<'_>,
    queues: Vec<Vec<usize>>,
    initial_handles: Vec<Option<ResumableConfidence>>,
) -> ScheduleOutcome {
    debug_assert_eq!(initial_handles.len(), ctx.lineages.len());
    let shards = queues.len().max(1);
    let mut accums: Vec<ShardAccum> =
        queues.iter().map(|q| ShardAccum { assigned: q.len(), ..Default::default() }).collect();
    accums.resize(shards, ShardAccum::default());
    let mut results: Vec<Option<ConfidenceResult>> = vec![None; ctx.lineages.len()];

    // `home[i]` is the shard item `i` was originally routed to; refinement
    // rounds re-enqueue an item at its home shard so per-shard caches stay
    // warm for it. Items outside every queue (deduplicated copies) are not
    // scheduled and must not be picked up by refinement rounds either.
    let mut home: Vec<Option<usize>> = vec![None; ctx.lineages.len()];
    for (shard, queue) in queues.iter().enumerate() {
        for &i in queue {
            home[i] = Some(shard);
        }
    }

    // Suspended d-tree frontiers, one slot per item: a budget-truncated
    // first run parks its handle here and every later refinement round
    // resumes it — monotone tightening, no recompilation. Slots stay `None`
    // for Monte-Carlo methods and unscheduled duplicates; converged handles
    // are kept (nothing re-runs them, and the caller harvests them).
    // Seeded handles (maintenance pools) start unowned: their first resume
    // on any shard is a warm start, not a migration.
    let handles: Vec<Mutex<HandleSlot>> = initial_handles
        .into_iter()
        .map(|handle| Mutex::new(HandleSlot { handle, owner: None }))
        .collect();

    // Round-1 order comes from the structural hardness scores; refinement
    // rounds re-score stragglers by their remaining bound width below.
    let mut scores: Vec<f64> = ctx.scores.to_vec();

    // Exactly-once retry bookkeeping for worker deaths, shared across
    // rounds: an item whose worker panicked is re-queued on another shard
    // at most once over the whole schedule; a second panic degrades it.
    let retried: Vec<AtomicBool> =
        (0..ctx.lineages.len()).map(|_| AtomicBool::new(false)).collect();

    let mut pending = queues;
    let mut rounds = 0;
    loop {
        rounds += 1;
        for queue in &mut pending {
            ctx.policy.order(queue, &scores);
        }
        let round_items: usize = pending.iter().map(Vec::len).sum();
        run_round(ctx, &pending, &mut results, &mut accums, &handles, &retried);
        ctx.obs
            .obs
            .event("cluster.round")
            .u64("round", rounds as u64)
            .u64("items", round_items as u64)
            .emit();

        let Some(deadline) = ctx.deadline else { break };
        if rounds >= ctx.max_rounds {
            break;
        }
        // A refinement round needs at least one scheduling quantum of
        // runway: with less, every item's proportional slice would be
        // sub-quantum — pure setup cost, zero tightening — so the round is
        // not started at all (the promptness guarantee of the flat engine).
        if deadline.saturating_duration_since(Instant::now()) < MIN_SLICE {
            break;
        }
        let mut unfinished: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut any = false;
        for (i, slot) in results.iter().enumerate() {
            let Some(shard) = home[i] else { continue };
            if !slot.as_ref().map(|r| r.converged).unwrap_or(false) {
                unfinished[shard].push(i);
                any = true;
                // Re-score by remaining interval width — the mass the next
                // round actually shrinks — with the structural score as a
                // tiebreaker between items of similar width.
                let width = slot.as_ref().map(|r| r.upper - r.lower).unwrap_or(1.0);
                scores[i] = ctx.estimator.refinement_score(&ctx.features[i], width);
            }
        }
        if !any {
            break;
        }
        pending = unfinished;
    }

    // Graceful-degradation backstop: a scheduled item can still hold no
    // result when every worker of its final round died before reaching it.
    // The batch contract is "every item gets a valid answer", so such items
    // report the vacuous degraded interval instead of a missing slot.
    // Unscheduled items (deduplicated copies, `home[i] == None`) are filled
    // from their representatives by the caller and stay `None` here.
    for (i, slot) in results.iter_mut().enumerate() {
        if slot.is_none() && home[i].is_some() {
            *slot = Some(ctx.engine.degrade_item(i, DegradationReason::ShardLost));
        }
    }

    ctx.obs.rounds.add(rounds as u64);
    let (stolen, resumed, migrated, deaths) = accums.iter().fold((0, 0, 0, 0), |acc, s| {
        (acc.0 + s.stolen, acc.1 + s.resumed, acc.2 + s.migrated, acc.3 + s.deaths)
    });
    ctx.obs.steals.add(stolen as u64);
    ctx.obs.resumed.add(resumed as u64);
    ctx.obs.migrations.add(migrated as u64);
    ctx.obs.shard_deaths.add(deaths as u64);
    if let Some(deadline) = ctx.deadline {
        // Slack = runway left when the schedule finished; 0 means the
        // deadline ran out (some items were truncated at their slices).
        ctx.obs.deadline_slack.record_duration(deadline.saturating_duration_since(Instant::now()));
    }

    ScheduleOutcome {
        results,
        shards: accums,
        rounds,
        handles: handles
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner).handle)
            .collect(),
    }
}

/// One pass over the pending queues: one stealing worker per shard.
///
/// **Shard-failure tolerance.** Every item execution runs behind a
/// [`catch_unwind`] boundary. A panic — injected at the `"cluster.worker"`
/// failpoint or escaping the engine for real — kills the executing worker
/// for the rest of the round (its shard goes dead; the orphaned queue is
/// drained by the surviving stealers, suspended frontiers migrating along
/// the usual steal-with-handle path). The item itself is re-queued on a
/// *different* shard exactly once per schedule (`retried`); a second panic
/// degrades it to the vacuous interval via
/// [`ConfidenceEngine::degrade_item`]. The single-worker fast path has no
/// other shard to retry on: the lone worker survives the panic and retries
/// the item once at its own queue tail instead.
fn run_round(
    ctx: &RunContext<'_>,
    pending: &[Vec<usize>],
    results: &mut [Option<ConfidenceResult>],
    accums: &mut [ShardAccum],
    handles: &[Mutex<HandleSlot>],
    retried: &[AtomicBool],
) {
    let total: usize = pending.iter().map(Vec::len).sum();
    if total == 0 {
        return;
    }
    let shards = pending.len();
    // One worker per shard; a worker whose queue is empty from the start
    // immediately turns into a stealer, so capacity is never parked.
    let workers = shards.min(total);
    if workers == 1 {
        // Single worker: no stealing, no threads, no lock traffic — keeps
        // the 1-shard cluster within spitting distance of the plain engine.
        let mut left = total;
        let mut queue: VecDeque<(usize, usize)> = pending
            .iter()
            .enumerate()
            .flat_map(|(shard, q)| q.iter().map(move |&i| (i, shard)))
            .collect();
        while let Some((i, shard)) = queue.pop_front() {
            let item_deadline = slice_deadline(ctx.deadline, left.max(1), 1);
            left = left.saturating_sub(1);
            match catch_unwind(AssertUnwindSafe(|| run_one(ctx, i, shard, item_deadline, handles)))
            {
                Ok((r, resumed, migrated)) => {
                    accums[shard].executed += 1;
                    accums[shard].resumed += usize::from(resumed);
                    accums[shard].migrated += usize::from(migrated);
                    accums[shard].compute += r.elapsed;
                    match &results[i] {
                        Some(old) if !improves(&r, old) => {}
                        _ => results[i] = Some(r),
                    }
                }
                Err(_) => {
                    accums[shard].deaths += 1;
                    ctx.obs
                        .obs
                        .event("cluster.shard_death")
                        .u64("shard", shard as u64)
                        .u64("item", i as u64)
                        .emit();
                    // The panic may have unwound through the item's handle
                    // lock: recover the mutex and drop the (possibly
                    // half-refined) frontier — recompiling is sound.
                    handles[i].lock().unwrap_or_else(PoisonError::into_inner).handle = None;
                    if !retried[i].swap(true, Ordering::SeqCst) {
                        queue.push_back((i, shard));
                        left += 1;
                    } else if results[i].is_none() {
                        results[i] = Some(ctx.engine.degrade_item(i, DegradationReason::ShardLost));
                    }
                }
            }
        }
        return;
    }
    let queues: Vec<Mutex<VecDeque<usize>>> =
        pending.iter().map(|q| Mutex::new(q.iter().copied().collect())).collect();
    let unstarted = AtomicUsize::new(total);
    let out: Mutex<&mut [Option<ConfidenceResult>]> = Mutex::new(results);
    let accum_cells: Vec<Mutex<&mut ShardAccum>> = accums.iter_mut().map(Mutex::new).collect();

    // A dying worker re-queues its item *after* unwinding, which can race
    // past the moment the surviving workers scanned every queue empty and
    // exited. Items left in the queues when a pass ends are therefore not
    // lost: another pass of workers is spawned over them, until the queues
    // drain or every worker of a pass died (then the caller's backstop
    // degrades whatever remains).
    loop {
        let deaths = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let unstarted = &unstarted;
                let out = &out;
                let accum_cells = &accum_cells;
                let deaths = &deaths;
                scope.spawn(move || {
                    let mut local = ShardAccum::default();
                    loop {
                        let popped = pop_or_steal(queues, w);
                        let Some((i, stolen)) = popped else { break };
                        if stolen {
                            ctx.obs
                                .obs
                                .event("cluster.steal")
                                .u64("item", i as u64)
                                .u64("thief", w as u64)
                                .emit();
                        }
                        // The share computation counts this item as still
                        // unstarted (it has not consumed time yet), so decrement
                        // after computing the slice denominator.
                        let left = unstarted.load(Ordering::Relaxed).max(1);
                        let item_deadline = slice_deadline(ctx.deadline, left, workers);
                        unstarted.fetch_sub(1, Ordering::Relaxed);

                        match catch_unwind(AssertUnwindSafe(|| {
                            run_one(ctx, i, w, item_deadline, handles)
                        })) {
                            Ok((r, resumed, migrated)) => {
                                local.executed += 1;
                                local.stolen += usize::from(stolen);
                                local.resumed += usize::from(resumed);
                                local.migrated += usize::from(migrated);
                                local.compute += r.elapsed;
                                let mut slots = out.lock().expect("result slots poisoned");
                                match &slots[i] {
                                    Some(old) if !improves(&r, old) => {}
                                    _ => slots[i] = Some(r),
                                }
                            }
                            Err(_) => {
                                local.deaths += 1;
                                deaths.fetch_add(1, Ordering::Relaxed);
                                ctx.obs
                                    .obs
                                    .event("cluster.shard_death")
                                    .u64("shard", w as u64)
                                    .u64("item", i as u64)
                                    .emit();
                                // The panic may have unwound through the item's
                                // handle lock: recover the mutex and drop the
                                // (possibly half-refined) frontier — recompiling
                                // on the retry shard is sound.
                                handles[i].lock().unwrap_or_else(PoisonError::into_inner).handle =
                                    None;
                                if !retried[i].swap(true, Ordering::SeqCst) {
                                    // First failure: hand the item to the next
                                    // shard's queue. Even if that shard's worker
                                    // is dead too, a surviving stealer drains it.
                                    queues[(w + 1) % shards]
                                        .lock()
                                        .expect("queue poisoned")
                                        .push_back(i);
                                    unstarted.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    let r =
                                        ctx.engine.degrade_item(i, DegradationReason::ShardLost);
                                    let mut slots = out.lock().expect("result slots poisoned");
                                    if slots[i].is_none() {
                                        slots[i] = Some(r);
                                    }
                                }
                                // This worker's shard is dead for the rest of
                                // the round; its queue is drained by the
                                // surviving stealers.
                                break;
                            }
                        }
                    }
                    let mut acc = accum_cells[w].lock().expect("accum poisoned");
                    acc.executed += local.executed;
                    acc.stolen += local.stolen;
                    acc.resumed += local.resumed;
                    acc.migrated += local.migrated;
                    acc.deaths += local.deaths;
                    acc.compute += local.compute;
                });
            }
        });
        let leftover: usize = queues.iter().map(|q| q.lock().expect("queue poisoned").len()).sum();
        if leftover == 0 || deaths.load(Ordering::Relaxed) >= workers {
            break;
        }
    }
}

/// Computes one item through the engine hook (the cache is the executing
/// shard's) and feeds its exported stats back into the hardness estimator.
///
/// If a prior round (or the maintenance pre-pass that seeded the slot)
/// parked a suspended d-tree frontier for the item, this *resumes* it with
/// the slice's remaining time instead of recompiling — bounds tighten
/// monotonically across rounds. Fresh runs capture a handle only when
/// [`RunContext::capture`] is set; without it the plain `compute_item` path
/// runs, keeping the no-deadline cluster bit-identical to the unsharded
/// engine with zero capture overhead.
///
/// Returns `(result, resumed, migrated)`. Resumed slices do **not** feed the
/// hardness estimator: its calibration maps whole-lineage features to
/// whole-run work, and a slice's partial counters would drag the bucket
/// factor down. `migrated` is set when the resumed frontier's previous slice
/// ran on a different shard — the handle moved with the steal.
fn run_one(
    ctx: &RunContext<'_>,
    i: usize,
    shard: usize,
    item_deadline: Option<Instant>,
    handles: &[Mutex<HandleSlot>],
) -> (ConfidenceResult, bool, bool) {
    let cache = ctx.caches[shard];
    // The worker failpoint fires *before* the handle lock is taken, so most
    // injected deaths leave the frontier slot clean; real panics from the
    // compute below may poison it, which the catch-side recovery handles.
    ctx.fault.check("cluster.worker").unwrap_or_else(|e| panic!("injected worker fault: {e}"));
    let mut guard = handles[i].lock().unwrap_or_else(PoisonError::into_inner);
    let slot = &mut *guard;
    if let Some(handle) = slot.handle.as_mut() {
        let migrated = slot.owner.is_some_and(|o| o != shard);
        if migrated {
            ctx.obs
                .obs
                .event("cluster.migration")
                .u64("item", i as u64)
                .u64("to_shard", shard as u64)
                .emit();
        }
        slot.owner = Some(shard);
        let r = match item_deadline {
            Some(d) => handle.resume_until(ctx.space, d, cache),
            None => handle.resume(
                ctx.space,
                &ConfidenceBudget { timeout: None, max_work: ctx.max_work },
                cache,
            ),
        };
        // Drop failed handles (space invalidated mid-run: fail closed,
        // recompute fresh next round if time remains). Converged handles
        // stay parked: refinement rounds never re-enqueue converged items,
        // and the caller harvests the fully refined frontier — the cheapest
        // substrate for the *next* delta.
        if handle.failed() {
            slot.handle = None;
        }
        return (r, true, migrated);
    }
    let r = if ctx.capture {
        let (r, handle) = ctx.engine.compute_item_resumable(
            ctx.lineages[i],
            ctx.space,
            ctx.origins,
            i,
            item_deadline,
            cache,
        );
        slot.handle = handle;
        slot.owner = Some(shard);
        r
    } else {
        ctx.engine.compute_item(ctx.lineages[i], ctx.space, ctx.origins, i, item_deadline, cache)
    };
    if let Some(stats) = &r.stats {
        ctx.estimator.observe(&ctx.features[i], stats);
    }
    (r, false, false)
}

/// The per-item deadline: now plus this item's proportional share of the
/// remaining time (`remaining × workers / unstarted`, capped at `remaining`).
fn slice_deadline(deadline: Option<Instant>, unstarted: usize, workers: usize) -> Option<Instant> {
    let deadline = deadline?;
    let now = Instant::now();
    let remaining = deadline.saturating_duration_since(now);
    if remaining < MIN_SLICE {
        // Past the deadline — or so close that the slice could not pay for
        // its own setup: hand an already-expired instant through so the
        // engine short-circuits the item to the immediate non-converged
        // path instead of burning a sub-quantum slice on pure overhead.
        return Some(deadline.min(now));
    }
    let slice = remaining
        .checked_mul(workers.min(unstarted) as u32)
        .map(|d| d / unstarted as u32)
        .unwrap_or(remaining)
        .min(remaining);
    if slice < MIN_SLICE {
        // The proportional share itself is sub-quantum (many stragglers,
        // little time): same short-circuit.
        return Some(deadline.min(now));
    }
    Some(now + slice)
}

/// Pops the front of the worker's own queue, or steals the *back* (the
/// estimated-easiest pending item under hardest-first ordering) of the
/// longest other queue. Returns `(item, was_stolen)`.
fn pop_or_steal(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<(usize, bool)> {
    if let Some(i) = queues[own].lock().expect("queue poisoned").pop_front() {
        return Some((i, false));
    }
    loop {
        // Snapshot queue lengths without holding more than one lock at a
        // time, then try to steal from the fullest victim.
        let victim = queues
            .iter()
            .enumerate()
            .filter(|&(s, _)| s != own)
            .map(|(s, q)| (s, q.lock().expect("queue poisoned").len()))
            .filter(|&(_, len)| len > 0)
            .max_by_key(|&(_, len)| len)
            .map(|(s, _)| s)?;
        if let Some(i) = queues[victim].lock().expect("queue poisoned").pop_back() {
            return Some((i, true));
        }
        // Raced with another stealer; rescan.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(converged: bool, lower: f64, upper: f64) -> ConfidenceResult {
        ConfidenceResult {
            estimate: (lower + upper) / 2.0,
            lower,
            upper,
            converged,
            elapsed: Duration::ZERO,
            method: "test".into(),
            stats: None,
            degraded: None,
        }
    }

    #[test]
    fn improves_prefers_convergence_then_tighter_bounds() {
        assert!(improves(&result(true, 0.4, 0.4), &result(false, 0.0, 1.0)));
        assert!(!improves(&result(false, 0.0, 1.0), &result(true, 0.4, 0.4)));
        assert!(!improves(&result(true, 0.4, 0.4), &result(true, 0.2, 0.9)));
        assert!(improves(&result(false, 0.3, 0.6), &result(false, 0.0, 1.0)));
        assert!(!improves(&result(false, 0.0, 1.0), &result(false, 0.3, 0.6)));
    }

    #[test]
    fn hardest_first_orders_by_score_then_index() {
        let scores = vec![1.0, 5.0, 5.0, 0.5];
        let mut queue = vec![3, 2, 0, 1];
        SchedulePolicy::HardestFirst.order(&mut queue, &scores);
        assert_eq!(queue, vec![1, 2, 0, 3]);
        SchedulePolicy::InputOrder.order(&mut queue, &scores);
        assert_eq!(queue, vec![0, 1, 2, 3]);
    }

    #[test]
    fn slices_are_proportional_and_capped() {
        let now = Instant::now();
        let deadline = now + Duration::from_secs(10);
        // 1 worker, 10 unstarted items: ~a tenth of the remaining time each.
        let d = slice_deadline(Some(deadline), 10, 1).unwrap();
        let slice = d.saturating_duration_since(now);
        assert!(slice <= Duration::from_millis(1100), "slice {slice:?}");
        assert!(slice >= Duration::from_millis(900), "slice {slice:?}");
        // Last item: the full remaining time.
        let d = slice_deadline(Some(deadline), 1, 1).unwrap();
        assert!(d.saturating_duration_since(now) >= Duration::from_millis(9900));
        // More workers than items never over-allocates past the deadline.
        let d = slice_deadline(Some(deadline), 2, 8).unwrap();
        assert!(d <= deadline);
        // No deadline, no slicing.
        assert!(slice_deadline(None, 5, 2).is_none());
    }

    #[test]
    fn sub_quantum_slices_short_circuit_to_an_expired_deadline() {
        let now = Instant::now();
        // Within one quantum of the deadline: an expired instant comes back,
        // so the engine takes its immediate non-converged path.
        let d = slice_deadline(Some(now + Duration::from_micros(100)), 1, 1).unwrap();
        assert!(d <= Instant::now());
        // Plenty of absolute time but so many stragglers that the
        // proportional share is sub-quantum: same short-circuit.
        let d = slice_deadline(Some(now + Duration::from_millis(2)), 100_000, 1).unwrap();
        assert!(d <= Instant::now());
        // A healthy share passes through as a future deadline.
        let d = slice_deadline(Some(now + Duration::from_secs(10)), 10, 1).unwrap();
        assert!(d > Instant::now());
    }

    #[test]
    fn stolen_handles_migrate_between_shards_and_are_counted() {
        use events::Clause;
        use pdb::confidence::ConfidenceMethod;

        let mut space = ProbabilitySpace::new();
        let vars: Vec<_> =
            (0..6).map(|i| space.add_bool(format!("x{i}"), 0.3 + 0.05 * i as f64)).collect();
        let lineage = Dnf::from_clauses(
            (0..5).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        let lineages = vec![&lineage];
        let features = vec![LineageFeatures::of(&lineage)];
        let scores = vec![1.0];
        let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(1e-6)).with_threads(1);
        let estimator = HardnessEstimator::new();
        let cobs = ClusterObs::default();
        let fault = Fault::disabled();
        let ctx = RunContext {
            lineages: &lineages,
            space: &space,
            origins: None,
            features: &features,
            scores: &scores,
            engine: &engine,
            estimator: &estimator,
            caches: &[None, None],
            policy: SchedulePolicy::HardestFirst,
            deadline: None,
            max_rounds: 1,
            max_work: None,
            capture: true,
            obs: &cobs,
            fault: &fault,
        };
        let handles = vec![Mutex::new(HandleSlot::default())];
        let retried = vec![AtomicBool::new(false)];
        let mut results = vec![None];
        let mut accums = vec![ShardAccum::default(); 2];

        // Round 1: shard 0 runs the item fresh and parks its frontier.
        run_round(&ctx, &[vec![0], vec![]], &mut results, &mut accums, &handles, &retried);
        assert_eq!(accums[0].executed, 1);
        assert_eq!(accums[0].migrated, 0, "a fresh run is not a migration");
        {
            let slot = handles[0].lock().unwrap();
            assert!(slot.handle.is_some(), "capture must park a frontier");
            assert_eq!(slot.owner, Some(0));
        }

        // Round 2: the item is pending only on shard 1 (as after a steal) —
        // the suspended handle moves with it and the hop counts as a
        // migration before ownership rebinds to the thief.
        run_round(&ctx, &[vec![], vec![0]], &mut results, &mut accums, &handles, &retried);
        assert_eq!(accums[1].executed, 1);
        assert_eq!(accums[1].resumed, 1, "the migrated handle must resume, not recompile");
        assert_eq!(accums[1].migrated, 1, "a cross-shard resume is a migration");
        assert_eq!(handles[0].lock().unwrap().owner, Some(1));

        // Round 3: resuming on the now-owning shard again is no migration.
        run_round(&ctx, &[vec![], vec![0]], &mut results, &mut accums, &handles, &retried);
        assert_eq!(accums[1].resumed, 2);
        assert_eq!(accums[1].migrated, 1, "same-shard resumes must not count");
    }

    #[test]
    fn stealing_drains_the_fullest_queue_from_the_back() {
        let queues: Vec<Mutex<VecDeque<usize>>> = vec![
            Mutex::new(VecDeque::new()),
            Mutex::new(VecDeque::from(vec![1, 2])),
            Mutex::new(VecDeque::from(vec![3, 4, 5])),
        ];
        assert_eq!(pop_or_steal(&queues, 0), Some((5, true)));
        assert_eq!(pop_or_steal(&queues, 0), Some((4, true)));
        assert_eq!(pop_or_steal(&queues, 0), Some((2, true)));
        assert_eq!(pop_or_steal(&queues, 1), Some((1, false)));
        assert_eq!(pop_or_steal(&queues, 1), Some((3, true)));
        assert_eq!(pop_or_steal(&queues, 1), None);
    }
}
