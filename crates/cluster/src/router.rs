//! Partitioning answer tuples across shard engines.
//!
//! The [`ShardRouter`] assigns every batch item to one of `N` shards through
//! a pluggable [`Partitioner`]. Partitioning only decides *where an item
//! starts* — the scheduler's work stealing may migrate it — so any policy is
//! correct; policies differ in balance and cache locality:
//!
//! * [`HashPartitioner`] routes by canonical lineage hash: deterministic,
//!   stateless, and stable across batches, so repeated queries land on the
//!   same shard and hit that shard's warm cache.
//! * [`SizeBalancedPartitioner`] bin-packs by estimated hardness (greedy
//!   longest-processing-time): each item goes to the currently lightest
//!   shard, so total estimated work is balanced even when a few lineages
//!   dominate the batch.

use events::{Dnf, DnfHash};

/// One batch item as seen by a [`Partitioner`].
#[derive(Debug, Clone, Copy)]
pub struct RouteItem<'a> {
    /// Position of the item in the input batch.
    pub index: usize,
    /// The lineage itself.
    pub lineage: &'a Dnf,
    /// Canonical fingerprint of the lineage (precomputed by the router).
    pub hash: DnfHash,
    /// Estimated hardness score from the cluster's estimator.
    pub score: f64,
}

/// A policy assigning batch items to shards.
///
/// Implementations must be deterministic in their inputs: the cluster's
/// reproducibility guarantees (bit-identical deterministic methods,
/// seed-stable Monte-Carlo) hold for any assignment, but schedule *timings*
/// are only comparable across runs when the assignment is stable.
pub trait Partitioner: Send + Sync {
    /// Returns, for each item, the shard it is assigned to (`< shards`).
    /// `shards` is always ≥ 1.
    fn partition(&self, items: &[RouteItem<'_>], shards: usize) -> Vec<usize>;

    /// Human-readable policy name for stats and logs.
    fn name(&self) -> &'static str;
}

/// Routes by canonical lineage hash (`hash mod shards`).
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, items: &[RouteItem<'_>], shards: usize) -> Vec<usize> {
        items.iter().map(|it| it.hash.shard(shards)).collect()
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Greedy longest-processing-time bin packing over estimated hardness: items
/// are considered hardest-first and each goes to the shard with the least
/// estimated load so far. Ties break toward the lower shard id, so the
/// assignment is deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct SizeBalancedPartitioner;

impl Partitioner for SizeBalancedPartitioner {
    fn partition(&self, items: &[RouteItem<'_>], shards: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| {
            items[b]
                .score
                .partial_cmp(&items[a].score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(items[a].index.cmp(&items[b].index))
        });
        let mut load = vec![0.0_f64; shards];
        let mut assignment = vec![0usize; items.len()];
        for pos in order {
            let lightest = load
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(s, _)| s)
                .unwrap_or(0);
            // Every item costs at least a scheduling quantum, so a batch of
            // all-zero scores still spreads across shards.
            load[lightest] += items[pos].score.max(1.0);
            assignment[pos] = lightest;
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "size-balanced"
    }
}

/// Routes a batch onto `shards` per-shard queues using a [`Partitioner`].
#[derive(Clone, Copy)]
pub struct ShardRouter<'p> {
    partitioner: &'p dyn Partitioner,
    shards: usize,
}

impl<'p> ShardRouter<'p> {
    /// A router over `shards` shards (clamped to ≥ 1) with the given policy.
    pub fn new(partitioner: &'p dyn Partitioner, shards: usize) -> Self {
        ShardRouter { partitioner, shards: shards.max(1) }
    }

    /// The effective shard count (≥ 1).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Assigns items to shards and returns the per-shard queues of item
    /// indices, preserving the relative order of `items` within each queue.
    /// Out-of-range assignments from a misbehaving partitioner are clamped
    /// into range rather than dropped: losing an item would lose an answer.
    pub fn route(&self, items: &[RouteItem<'_>]) -> Vec<Vec<usize>> {
        let assignment = self.partitioner.partition(items, self.shards);
        debug_assert_eq!(assignment.len(), items.len());
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); self.shards];
        for (it, &shard) in items.iter().zip(&assignment) {
            queues[shard.min(self.shards - 1)].push(it.index);
        }
        queues
    }
}

impl std::fmt::Debug for ShardRouter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("partitioner", &self.partitioner.name())
            .field("shards", &self.shards)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::{Clause, ProbabilitySpace};

    fn lineages(n: usize) -> (ProbabilitySpace, Vec<Dnf>) {
        let mut s = ProbabilitySpace::new();
        let dnfs = (0..n)
            .map(|i| {
                let len = 1 + i % 5;
                let vars: Vec<_> =
                    (0..=len).map(|j| s.add_bool(format!("v{i}_{j}"), 0.4)).collect();
                Dnf::from_clauses((0..len).map(|k| Clause::from_bools(&[vars[k], vars[k + 1]])))
            })
            .collect();
        (s, dnfs)
    }

    fn route_items(dnfs: &[Dnf]) -> Vec<RouteItem<'_>> {
        dnfs.iter()
            .enumerate()
            .map(|(index, lineage)| RouteItem {
                index,
                lineage,
                hash: lineage.canonical_hash(),
                score: lineage.size() as f64,
            })
            .collect()
    }

    #[test]
    fn hash_routing_is_stable_and_complete() {
        let (_s, dnfs) = lineages(20);
        let items = route_items(&dnfs);
        let router = ShardRouter::new(&HashPartitioner, 4);
        let queues = router.route(&items);
        assert_eq!(queues.len(), 4);
        let mut seen: Vec<usize> = queues.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>(), "every item routed exactly once");
        // Same inputs, same routing.
        assert_eq!(queues, router.route(&items));
    }

    #[test]
    fn size_balanced_routing_balances_estimated_load() {
        let (_s, dnfs) = lineages(40);
        let items = route_items(&dnfs);
        let router = ShardRouter::new(&SizeBalancedPartitioner, 4);
        let queues = router.route(&items);
        let loads: Vec<f64> = queues
            .iter()
            .map(|q| q.iter().map(|&i| items[i].score.max(1.0)).sum::<f64>())
            .collect();
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        // LPT keeps the spread within the largest single item's cost.
        let biggest = items.iter().map(|i| i.score.max(1.0)).fold(0.0, f64::max);
        assert!(max - min <= biggest + 1e-9, "loads {loads:?} spread more than {biggest}");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let (_s, dnfs) = lineages(5);
        let items = route_items(&dnfs);
        let router = ShardRouter::new(&HashPartitioner, 0);
        assert_eq!(router.shards(), 1);
        let queues = router.route(&items);
        assert_eq!(queues.len(), 1);
        assert_eq!(queues[0].len(), 5);
    }
}
