//! # dtree-approx
//!
//! A reproduction of *Olteanu, Huang, Koch — "Approximate Confidence
//! Computation in Probabilistic Databases", ICDE 2010*, as a Rust workspace.
//!
//! This facade crate re-exports the workspace crates so downstream users (and
//! the examples and integration tests at the repository root) can depend on a
//! single crate:
//!
//! * [`events`] — propositional event algebra: random variables, atoms,
//!   clauses, DNFs, possible-world semantics (Section III of the paper).
//! * [`dtree`] — the paper's contribution: compilation of DNFs into d-trees,
//!   probability bounds, and the deterministic ε-approximation algorithm
//!   (Sections IV and V).
//! * [`montecarlo`] — the Karp-Luby / Dagum-Karp-Luby-Ross `aconf` baseline
//!   and a naive possible-world sampler (Section II, Section VII.1).
//! * [`pdb`] — the probabilistic-database substrate: tuple-independent and
//!   BID tables, positive relational algebra with lineage, conjunctive
//!   queries, the hierarchical / IQ classification, the SPROUT exact
//!   baseline, and graph motif queries (Section VI).
//! * [`cluster`] — the sharded, hardness-aware confidence cluster above
//!   `pdb::ConfidenceEngine`: structural hardness estimation, pluggable
//!   shard partitioning, and a deadline-aware work-stealing scheduler.
//! * [`obs`] — the unified observability layer: a handle-based metrics
//!   registry (counters, gauges, log-bucketed histograms), a bounded
//!   structured trace journal, and JSON-lines snapshot export. Disabled by
//!   default; attaching a sink never changes computed results.
//! * [`workloads`] — the evaluation's data generators: tuple-independent
//!   TPC-H, random graphs, the karate-club / dolphin social networks
//!   (Section VII), and the mixed-hardness batches used to exercise the
//!   cluster scheduler.
//!
//! # Quickstart
//!
//! ```
//! use dtree_approx::events::{Clause, Dnf, ProbabilitySpace};
//! use dtree_approx::dtree::{ApproxCompiler, ApproxOptions};
//!
//! // Φ = (x ∧ y) ∨ (x ∧ z) ∨ v  — Example 5.2 of the paper.
//! let mut space = ProbabilitySpace::new();
//! let x = space.add_bool("x", 0.3);
//! let y = space.add_bool("y", 0.2);
//! let z = space.add_bool("z", 0.7);
//! let v = space.add_bool("v", 0.8);
//! let phi = Dnf::from_clauses(vec![
//!     Clause::from_bools(&[x, y]),
//!     Clause::from_bools(&[x, z]),
//!     Clause::from_bools(&[v]),
//! ]);
//!
//! let result = ApproxCompiler::new(ApproxOptions::absolute(0.001)).run(&phi, &space);
//! assert!(result.converged);
//! assert!((result.estimate - 0.8456).abs() <= 0.001);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cluster;
pub use dtree;
pub use events;
pub use montecarlo;
pub use obs;
pub use pdb;
pub use workloads;
