//! Cross-checks of the batched [`ConfidenceEngine`] against the per-lineage
//! `confidence()` front-end on the paper's workloads: batching (threads,
//! shared cache, shared deadline) must change the work done, never the
//! answers.

use std::time::{Duration, Instant};

use dtree_approx::events::Dnf;
use dtree_approx::pdb::confidence::{
    confidence, confidence_with, ConfidenceBudget, ConfidenceMethod,
};
use dtree_approx::pdb::{ConfidenceEngine, Database};
use dtree_approx::workloads::tpch::{TpchConfig, TpchDatabase, TpchQuery};
use dtree_approx::workloads::{karate_club, SocialNetworkConfig};

fn all_methods() -> Vec<ConfidenceMethod> {
    vec![
        ConfidenceMethod::DTreeExact,
        ConfidenceMethod::DTreeAbsolute(0.01),
        ConfidenceMethod::DTreeRelative(0.01),
        ConfidenceMethod::KarpLuby { epsilon: 0.1, delta: 0.01 },
        ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.1 },
    ]
}

/// Asserts that a parallel, cached, seeded batch reproduces seeded
/// per-lineage calls bit for bit, for every method.
fn assert_batch_matches_per_lineage(db: &Database, lineages: &[Dnf], workload: &str) {
    const SEED: u64 = 0x5eed_ba7c;
    let budget = ConfidenceBudget::default();
    for method in all_methods() {
        let engine = ConfidenceEngine::new(method.clone()).with_seed(SEED).with_threads(3);
        let batch = engine.confidence_batch(lineages, db.space(), Some(db.origins()));
        assert_eq!(batch.results.len(), lineages.len());
        for (i, (lineage, got)) in lineages.iter().zip(&batch.results).enumerate() {
            let want = confidence_with(
                lineage,
                db.space(),
                Some(db.origins()),
                &method,
                &budget,
                Some(ConfidenceEngine::item_seed(SEED, i)),
                None,
            );
            assert_eq!(
                want.estimate.to_bits(),
                got.estimate.to_bits(),
                "{workload} answer {i} method {}: {} vs {}",
                want.method,
                want.estimate,
                got.estimate
            );
            assert_eq!(want.lower.to_bits(), got.lower.to_bits());
            assert_eq!(want.upper.to_bits(), got.upper.to_bits());
            assert_eq!(want.converged, got.converged);
        }
    }
}

#[test]
fn tpch_batch_matches_per_lineage_for_every_method() {
    let db = TpchDatabase::generate(&TpchConfig::new(0.01));
    let lineages: Vec<Dnf> = db.answers(&TpchQuery::Iq6).into_iter().map(|a| a.lineage).collect();
    assert!(!lineages.is_empty());
    assert_batch_matches_per_lineage(db.database(), &lineages, "tpch-iq6");
}

#[test]
fn social_batch_matches_per_lineage_for_every_method() {
    let net = karate_club(&SocialNetworkConfig::karate_default());
    let (hub, _) = net.separation_pair();
    let lineages: Vec<Dnf> =
        net.graph.within2_not1_answers(hub).into_iter().map(|(_, l)| l).collect();
    assert!(!lineages.is_empty());
    assert_batch_matches_per_lineage(&net.db, &lineages, "karate-within2not1");
}

#[test]
fn social_s2_relation_cache_on_off_agree() {
    let net = karate_club(&SocialNetworkConfig::karate_default());
    let n = net.num_nodes;
    let mut lineages = Vec::new();
    for s in 0..n {
        for t in 0..n {
            if s != t {
                let l = net.graph.separation2_lineage(s, t);
                if !l.is_empty() {
                    lineages.push(l);
                }
            }
        }
    }
    let method = ConfidenceMethod::DTreeAbsolute(0.01);
    let cached = ConfidenceEngine::new(method.clone()).confidence_batch(
        &lineages,
        net.db.space(),
        Some(net.db.origins()),
    );
    let uncached = ConfidenceEngine::new(method).without_cache().confidence_batch(
        &lineages,
        net.db.space(),
        Some(net.db.origins()),
    );
    // Caching (and the duplicate detection that handles the symmetric
    // answers s2(s, t) = s2(t, s)) never changes a single bit of any result.
    for (a, b) in cached.results.iter().zip(&uncached.results) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
    }
}

#[test]
fn shared_cache_fires_across_overlapping_lineages() {
    // phi is a hard chain; psi extends it with an independent clause, so
    // psi's independent-or decomposition re-encounters phi as a component
    // and must be served from the cache filled by phi's own run.
    let mut space = dtree_approx::events::ProbabilitySpace::new();
    let vars: Vec<_> =
        (0..28).map(|i| space.add_bool(format!("x{i}"), 0.2 + 0.02 * i as f64)).collect();
    let chain: Vec<dtree_approx::events::Clause> = (0..25)
        .map(|i| dtree_approx::events::Clause::from_bools(&[vars[i], vars[i + 1]]))
        .collect();
    let phi = Dnf::from_clauses(chain.clone());
    let mut extended = chain;
    extended.push(dtree_approx::events::Clause::from_bools(&[vars[27]]));
    let psi = Dnf::from_clauses(extended);
    let lineages = vec![phi, psi];

    let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(1e-6)).with_threads(1);
    let cached = engine.confidence_batch(&lineages, &space, None);
    assert!(cached.cache.hits > 0, "expected cross-lineage cache hits: {:?}", cached.cache);
    let uncached = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(1e-6))
        .without_cache()
        .with_threads(1)
        .confidence_batch(&lineages, &space, None);
    for (a, b) in cached.results.iter().zip(&uncached.results) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    }
}

#[test]
fn batch_deadline_is_respected_on_hard_tpch_lineage() {
    // B9 is #P-hard; a batch of B9 lineages with a tight shared deadline must
    // come back quickly with best-effort (non-converged) results instead of
    // stalling — the bug this PR fixes made DTreeExact ignore the budget
    // entirely.
    let db = TpchDatabase::generate(&TpchConfig::new(0.05));
    let lineage = db.boolean_lineage(&TpchQuery::B9);
    // Three *distinct* hard lineages (so duplicate detection cannot collapse
    // the batch): B9 and two sublineages missing one clause each.
    let clauses = lineage.clauses().to_vec();
    let lineages = vec![
        lineage.clone(),
        Dnf::from_clauses(clauses[1..].to_vec()),
        Dnf::from_clauses(clauses[..clauses.len() - 1].to_vec()),
    ];
    let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeExact)
        .with_budget(ConfidenceBudget { timeout: Some(Duration::from_millis(100)), max_work: None })
        .with_threads(1);
    let t0 = Instant::now();
    let batch =
        engine.confidence_batch(&lineages, db.database().space(), Some(db.database().origins()));
    let elapsed = t0.elapsed();
    assert_eq!(batch.results.len(), 3);
    // Generous slack for slow CI: the point is that three hard lineages do
    // not each consume a fresh budget.
    assert!(elapsed < Duration::from_secs(10), "batch overran its shared deadline: {elapsed:?}");
    for r in &batch.results {
        // Bounds must stay sound even when truncated.
        assert!(r.lower <= r.upper + 1e-12);
        assert!((0.0..=1.0).contains(&r.lower) && (0.0..=1.0).contains(&r.upper));
    }
}

#[test]
fn convenience_batch_function_matches_engine() {
    let net = karate_club(&SocialNetworkConfig::karate_default());
    let (hub, _) = net.separation_pair();
    let lineages: Vec<Dnf> =
        net.graph.within2_not1_answers(hub).into_iter().map(|(_, l)| l).collect();
    let method = ConfidenceMethod::DTreeExact;
    let budget = ConfidenceBudget::default();
    let via_fn = dtree_approx::pdb::engine::confidence_batch(
        &lineages,
        net.db.space(),
        Some(net.db.origins()),
        &method,
        &budget,
    );
    for (r, lineage) in via_fn.iter().zip(&lineages) {
        let want = confidence(lineage, net.db.space(), Some(net.db.origins()), &method, &budget);
        assert_eq!(r.estimate.to_bits(), want.estimate.to_bits());
    }
}
