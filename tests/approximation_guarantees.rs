//! Property-based integration tests of the approximation guarantees: on
//! randomly generated DNFs and randomly generated probabilistic databases,
//! every algorithm must respect its error contract against brute-force
//! possible-world enumeration.

use dtree_approx::dtree::{
    dnf_bounds, dnf_bounds_fig3, exact_probability, ApproxCompiler, ApproxOptions, CompileOptions,
};
use dtree_approx::events::{Clause, Dnf, ProbabilitySpace};
use dtree_approx::montecarlo::{aconf, naive_monte_carlo, McOptions, NaiveOptions};
use proptest::prelude::*;

/// Strategy: a small random probability space plus a random positive DNF over
/// it (at most 8 Boolean variables so enumeration stays instant).
fn small_dnf() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
    let probs = prop::collection::vec(0.05f64..0.95, 2..8);
    probs.prop_flat_map(|ps| {
        let nvars = ps.len();
        let clause = prop::collection::btree_set(0..nvars, 1..=3.min(nvars));
        let clauses = prop::collection::vec(clause, 1..6)
            .prop_map(|cs| cs.into_iter().map(|c| c.into_iter().collect()).collect());
        (Just(ps), clauses)
    })
}

fn build(ps: &[f64], clause_vars: &[Vec<usize>]) -> (ProbabilitySpace, Dnf) {
    let mut space = ProbabilitySpace::new();
    let vars: Vec<_> =
        ps.iter().enumerate().map(|(i, &p)| space.add_bool(format!("v{i}"), p)).collect();
    let clauses: Vec<Clause> = clause_vars
        .iter()
        .map(|c| Clause::from_bools(&c.iter().map(|&i| vars[i]).collect::<Vec<_>>()))
        .collect();
    (space, Dnf::from_clauses(clauses))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The d-tree exact evaluation equals brute-force enumeration.
    #[test]
    fn dtree_exact_equals_enumeration((ps, cs) in small_dnf()) {
        let (space, dnf) = build(&ps, &cs);
        let exact = dnf.exact_probability_enumeration(&space);
        let d = exact_probability(&dnf, &space, &CompileOptions::default());
        prop_assert!((d.probability - exact).abs() < 1e-9);
    }

    /// Both leaf-bound heuristics (Figure 3 and the strengthened variant)
    /// always bracket the exact probability, and the strengthened bound is
    /// never looser.
    #[test]
    fn leaf_bounds_bracket_exact_probability((ps, cs) in small_dnf()) {
        let (space, dnf) = build(&ps, &cs);
        let exact = dnf.exact_probability_enumeration(&space);
        let fig3 = dnf_bounds_fig3(&dnf, &space);
        let improved = dnf_bounds(&dnf, &space);
        prop_assert!(fig3.lower <= exact + 1e-9 && exact <= fig3.upper + 1e-9);
        prop_assert!(improved.lower <= exact + 1e-9 && exact <= improved.upper + 1e-9);
        prop_assert!(improved.upper <= fig3.upper + 1e-9);
        prop_assert!(improved.lower + 1e-9 >= fig3.lower);
    }

    /// The absolute ε-approximation honours its contract for several ε.
    #[test]
    fn absolute_approximation_contract((ps, cs) in small_dnf(), eps in 0.001f64..0.2) {
        let (space, dnf) = build(&ps, &cs);
        let exact = dnf.exact_probability_enumeration(&space);
        let r = ApproxCompiler::new(ApproxOptions::absolute(eps)).run(&dnf, &space);
        prop_assert!(r.converged);
        prop_assert!((r.estimate - exact).abs() <= eps + 1e-9,
            "estimate {} exact {} eps {}", r.estimate, exact, eps);
        prop_assert!(r.lower <= exact + 1e-9 && exact <= r.upper + 1e-9);
    }

    /// The relative ε-approximation honours its contract.
    #[test]
    fn relative_approximation_contract((ps, cs) in small_dnf(), eps in 0.005f64..0.2) {
        let (space, dnf) = build(&ps, &cs);
        let exact = dnf.exact_probability_enumeration(&space);
        let r = ApproxCompiler::new(ApproxOptions::relative(eps)).run(&dnf, &space);
        prop_assert!(r.converged);
        prop_assert!((r.estimate - exact).abs() <= eps * exact + 1e-9,
            "estimate {} exact {} eps {}", r.estimate, exact, eps);
    }

    /// The Karp-Luby (ε, δ)-approximation is within its relative error on the
    /// vast majority of runs (δ = 10⁻⁴; a seeded RNG keeps this
    /// deterministic).
    #[test]
    fn karp_luby_contract((ps, cs) in small_dnf(), seed in 0u64..1000) {
        let (space, dnf) = build(&ps, &cs);
        let exact = dnf.exact_probability_enumeration(&space);
        let r = aconf(&dnf, &space, &McOptions::new(0.05).with_seed(seed));
        prop_assert!(r.converged);
        // Allow a small additive slack on top of the relative guarantee to
        // absorb the δ failure probability over many proptest cases.
        prop_assert!((r.estimate - exact).abs() <= 0.08 * exact + 0.02,
            "estimate {} exact {}", r.estimate, exact);
    }

    /// The naive Monte-Carlo sampler achieves its additive error.
    #[test]
    fn naive_monte_carlo_contract((ps, cs) in small_dnf(), seed in 0u64..1000) {
        let (space, dnf) = build(&ps, &cs);
        let exact = dnf.exact_probability_enumeration(&space);
        let opts = NaiveOptions::new(0.05).with_seed(seed);
        let r = naive_monte_carlo(&dnf, &space, &opts);
        prop_assert!((r.estimate - exact).abs() <= 0.12, "estimate {} exact {}", r.estimate, exact);
    }
}
