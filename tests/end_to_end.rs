//! End-to-end integration tests: query evaluation on probabilistic databases
//! → lineage DNFs → confidence computation, across every algorithm in the
//! workspace (d-tree exact, d-tree ε-approximation, SPROUT, Karp-Luby,
//! naive Monte Carlo), checked against brute-force possible-world
//! enumeration on instances small enough to enumerate.

use dtree_approx::dtree::{exact_probability, ApproxCompiler, ApproxOptions, CompileOptions};
use dtree_approx::montecarlo::{aconf, McOptions};
use dtree_approx::pdb::confidence::{confidence, ConfidenceBudget, ConfidenceMethod};
use dtree_approx::pdb::{sprout, ConjunctiveQuery, Database, Term, Value};
use dtree_approx::workloads::tpch::{TpchConfig, TpchDatabase, TpchQuery};
use dtree_approx::workloads::{karate_club, random_graph, RandomGraphConfig, SocialNetworkConfig};

/// Builds the Figure-5 social-network database (6 probabilistic edges).
fn figure5_db() -> Database {
    let mut db = Database::new();
    db.add_tuple_independent_table(
        "E",
        &["u", "v"],
        vec![
            (vec![Value::Int(5), Value::Int(7)], 0.9),
            (vec![Value::Int(5), Value::Int(11)], 0.8),
            (vec![Value::Int(6), Value::Int(7)], 0.1),
            (vec![Value::Int(6), Value::Int(11)], 0.9),
            (vec![Value::Int(6), Value::Int(17)], 0.5),
            (vec![Value::Int(7), Value::Int(17)], 0.2),
        ],
    );
    db
}

/// The triangle query of Section VI-A written as a conjunctive query with a
/// three-way self-join over the edge table; its single answer's probability
/// must equal 0.1 · 0.5 · 0.2 (Figure 5 (c)).
#[test]
fn triangle_query_on_figure5_matches_paper() {
    let db = figure5_db();
    let q = ConjunctiveQuery::new("triangle")
        .with_subgoal("E", vec![Term::var("A"), Term::var("B")])
        .with_subgoal("E", vec![Term::var("B"), Term::var("C")])
        .with_subgoal("E", vec![Term::var("A"), Term::var("C")]);
    let answers = q.evaluate(&db);
    assert_eq!(answers.len(), 1, "Boolean query has one answer");
    let lineage = &answers[0].lineage;
    let exact = lineage.exact_probability_enumeration(db.space());
    assert!((exact - 0.1 * 0.5 * 0.2).abs() < 1e-12);
    let d = exact_probability(lineage, db.space(), &CompileOptions::default());
    assert!((d.probability - exact).abs() < 1e-12);
}

/// Every confidence method agrees (within its guarantee) with brute-force
/// enumeration on a small join lineage.
#[test]
fn all_methods_agree_with_enumeration_on_small_join() {
    let mut db = Database::new();
    db.add_tuple_independent_table(
        "R",
        &["a", "b"],
        vec![
            (vec![Value::Int(1), Value::Int(10)], 0.4),
            (vec![Value::Int(2), Value::Int(10)], 0.6),
            (vec![Value::Int(3), Value::Int(20)], 0.7),
        ],
    );
    db.add_tuple_independent_table(
        "S",
        &["b", "c"],
        vec![
            (vec![Value::Int(10), Value::Int(100)], 0.5),
            (vec![Value::Int(20), Value::Int(100)], 0.3),
            (vec![Value::Int(20), Value::Int(200)], 0.9),
        ],
    );
    // The prototypical hard pattern R(A, B), S(B, C).
    let q = ConjunctiveQuery::new("hard-pattern")
        .with_subgoal("R", vec![Term::var("A"), Term::var("B")])
        .with_subgoal("S", vec![Term::var("B"), Term::var("C")]);
    let lineage = &q.evaluate(&db)[0].lineage;
    let exact = lineage.exact_probability_enumeration(db.space());

    let budget = ConfidenceBudget::default();
    let methods = [
        (ConfidenceMethod::DTreeExact, 1e-9),
        (ConfidenceMethod::DTreeAbsolute(0.01), 0.01),
        (ConfidenceMethod::DTreeRelative(0.01), 0.01 * exact),
        (ConfidenceMethod::KarpLuby { epsilon: 0.02, delta: 1e-4 }, 0.05),
        (ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.02 }, 0.06),
    ];
    for (method, tolerance) in methods {
        let r = confidence(lineage, db.space(), Some(db.origins()), &method, &budget);
        assert!(
            (r.estimate - exact).abs() <= tolerance + 1e-9,
            "{}: estimate {} vs exact {exact}",
            r.method,
            r.estimate
        );
    }
}

/// SPROUT, the d-tree on lineage, and enumeration agree on every answer of a
/// non-Boolean hierarchical query.
#[test]
fn sprout_matches_dtree_per_answer() {
    let mut db = Database::new();
    db.add_tuple_independent_table(
        "orders",
        &["ok", "ck"],
        vec![
            (vec![Value::Int(1), Value::Int(100)], 0.5),
            (vec![Value::Int(2), Value::Int(100)], 0.8),
            (vec![Value::Int(3), Value::Int(200)], 0.4),
        ],
    );
    db.add_tuple_independent_table(
        "lineitem",
        &["ok", "qty"],
        vec![
            (vec![Value::Int(1), Value::Int(7)], 0.3),
            (vec![Value::Int(1), Value::Int(9)], 0.6),
            (vec![Value::Int(2), Value::Int(7)], 0.2),
            (vec![Value::Int(3), Value::Int(5)], 0.9),
        ],
    );
    // q(C) :- orders(O, C), lineitem(O, Q) — hierarchical, grouped by customer.
    let q = ConjunctiveQuery::new("per-customer")
        .with_head(&["C"])
        .with_subgoal("orders", vec![Term::var("O"), Term::var("C")])
        .with_subgoal("lineitem", vec![Term::var("O"), Term::var("Q")]);
    assert!(q.is_hierarchical());

    let sprout_answers = sprout::answer_confidences(&q, &db).expect("hierarchical");
    let dtree_answers = q.evaluate(&db);
    assert_eq!(sprout_answers.len(), dtree_answers.len());
    for answer in &dtree_answers {
        let enumerated = answer.lineage.exact_probability_enumeration(db.space());
        let d = exact_probability(&answer.lineage, db.space(), &CompileOptions::default());
        let (_, sprout_p) =
            sprout_answers.iter().find(|(head, _)| head == &answer.head).expect("same answer set");
        assert!((d.probability - enumerated).abs() < 1e-9);
        assert!((sprout_p - enumerated).abs() < 1e-9, "answer {:?}", answer.head);
    }
}

/// The whole TPC-H pipeline at a micro scale: every query of the suite is
/// evaluated, and the d-tree relative approximation lies within its bound of
/// the d-tree exact value.
#[test]
fn tpch_pipeline_relative_error_holds_for_all_queries() {
    let db = TpchDatabase::generate(&TpchConfig::new(0.01));
    let budget = ConfidenceBudget::default();
    for query in TpchQuery::all() {
        for answer in db.answers(&query) {
            let exact = confidence(
                &answer.lineage,
                db.database().space(),
                Some(db.database().origins()),
                &ConfidenceMethod::DTreeExact,
                &budget,
            )
            .estimate;
            let approx = confidence(
                &answer.lineage,
                db.database().space(),
                Some(db.database().origins()),
                &ConfidenceMethod::DTreeRelative(0.05),
                &budget,
            );
            assert!(approx.converged, "{} did not converge", query.name());
            assert!(
                (approx.estimate - exact).abs() <= 0.05 * exact + 1e-9,
                "{}: approx {} vs exact {}",
                query.name(),
                approx.estimate,
                exact
            );
        }
    }
}

/// Graph workloads end to end: the triangle probability on a small random
/// graph and on the karate club is consistent between the d-tree and the
/// Karp-Luby estimator.
#[test]
fn graph_workloads_consistent_between_dtree_and_karp_luby() {
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(7, 0.4));
    let lineage = graph.triangle_lineage();
    let exact = exact_probability(&lineage, db.space(), &CompileOptions::default()).probability;
    let mc = aconf(&lineage, db.space(), &McOptions::new(0.02).with_seed(7));
    assert!(mc.converged);
    assert!((mc.estimate - exact).abs() <= 0.05 * exact + 0.01);

    let net = karate_club(&SocialNetworkConfig::karate_default());
    let tri = net.graph.triangle_lineage();
    let approx = ApproxCompiler::new(ApproxOptions::relative(0.01)).run(&tri, net.db.space());
    assert!(approx.converged);
    let mc = aconf(&tri, net.db.space(), &McOptions::new(0.05).with_seed(11));
    assert!(mc.converged);
    assert!(
        (approx.estimate - mc.estimate).abs() <= 0.1 * approx.estimate + 0.02,
        "d-tree {} vs aconf {}",
        approx.estimate,
        mc.estimate
    );
}

/// Lineage produced through the generic relational-algebra operators matches
/// the conjunctive-query evaluator.
#[test]
fn algebra_and_conjunctive_query_produce_equivalent_lineage() {
    use dtree_approx::pdb::algebra;
    let db = figure5_db();
    let e = db.table("E").unwrap();
    // Path of length 2 via algebra: E(a, b) ⋈ E(b, c) projected to ().
    let joined = algebra::join(&e, &e, &[(1, 0)], "p2");
    let q = ConjunctiveQuery::new("p2")
        .with_subgoal("E", vec![Term::var("A"), Term::var("B")])
        .with_subgoal("E", vec![Term::var("B"), Term::var("C")]);
    let answers = q.evaluate(&db);
    assert_eq!(answers.len(), 1);
    let via_query = answers[0].lineage.exact_probability_enumeration(db.space());
    let via_algebra = joined.boolean_lineage().exact_probability_enumeration(db.space());
    assert!((via_query - via_algebra).abs() < 1e-12);
}
