//! Cross-checks of the sharded [`ClusterEngine`] against the unsharded
//! [`ConfidenceEngine`] on the paper's answer relations: sharding (routing,
//! scheduling, stealing, cache topology) must change the work distribution,
//! never the answers.
//!
//! * fig8 shape: the `s2(X, Y)` answer relation on a uniform random graph;
//! * fig9 shape: motif lineages on the karate-club social network.

use std::sync::Arc;

use cluster::{
    CacheTopology, ClusterEngine, HashPartitioner, Partitioner, RouteItem, SizeBalancedPartitioner,
};
use dtree_approx::events::Dnf;
use dtree_approx::pdb::confidence::ConfidenceMethod;
use dtree_approx::pdb::{ConfidenceEngine, Database};
use dtree_approx::workloads::{
    karate_club, random_graph, s2_relation, RandomGraphConfig, SocialNetworkConfig,
};

fn all_methods() -> Vec<ConfidenceMethod> {
    vec![
        ConfidenceMethod::DTreeExact,
        ConfidenceMethod::DTreeAbsolute(0.01),
        ConfidenceMethod::DTreeRelative(0.01),
        ConfidenceMethod::KarpLuby { epsilon: 0.1, delta: 0.01 },
        ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.1 },
    ]
}

/// Asserts that the cluster reproduces the unsharded batch engine bit for
/// bit for every method: deterministic methods exactly, Monte-Carlo methods
/// under the shared fixed seed.
fn assert_cluster_matches_engine(db: &Database, lineages: &[Dnf], workload: &str) {
    const SEED: u64 = 0x5ca1_ab1e;
    for method in all_methods() {
        let single = ConfidenceEngine::new(method.clone()).with_seed(SEED).confidence_batch(
            lineages,
            db.space(),
            Some(db.origins()),
        );
        for shards in [1, 3] {
            let out = ClusterEngine::new(method.clone())
                .with_seed(SEED)
                .with_shards(shards)
                .confidence_batch(lineages, db.space(), Some(db.origins()));
            assert_eq!(out.results.len(), lineages.len());
            for (i, (want, got)) in single.results.iter().zip(&out.results).enumerate() {
                assert_eq!(
                    want.estimate.to_bits(),
                    got.estimate.to_bits(),
                    "{workload} item {i} method {} shards {shards}: {} vs {}",
                    want.method,
                    want.estimate,
                    got.estimate
                );
                assert_eq!(want.lower.to_bits(), got.lower.to_bits());
                assert_eq!(want.upper.to_bits(), got.upper.to_bits());
                assert_eq!(want.converged, got.converged);
            }
        }
    }
}

#[test]
fn fig8_random_graph_s2_relation_matches_engine_for_every_method() {
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(8, 0.3));
    let mut lineages = s2_relation(&graph, 8);
    // Keep the suite fast in debug builds; the batch stays a real answer
    // relation with overlapping lineages.
    lineages.truncate(18);
    assert!(!lineages.is_empty());
    assert_cluster_matches_engine(&db, &lineages, "fig8-s2");
}

#[test]
fn fig9_karate_motifs_match_engine_for_every_method() {
    let net = karate_club(&SocialNetworkConfig::karate_default());
    let (hub, _) = net.separation_pair();
    let mut lineages: Vec<Dnf> =
        net.graph.within2_not1_answers(hub).into_iter().map(|(_, l)| l).collect();
    // A few s2 lineages between distant nodes make the batch
    // hardness-skewed, like the fig9 series the paper reports.
    let n = net.num_nodes;
    lineages.extend((0..3).map(|k| net.graph.separation2_lineage(k, n - 1 - k)));
    lineages.truncate(16);
    assert!(!lineages.is_empty());
    assert_cluster_matches_engine(&net.db, &lineages, "fig9-karate");
}

#[test]
fn partitioners_and_cache_topologies_agree_on_fig8() {
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(8, 0.35));
    let mut lineages = s2_relation(&graph, 8);
    lineages.truncate(24);
    let method = ConfidenceMethod::DTreeAbsolute(0.001);
    let baseline = ConfidenceEngine::new(method.clone()).without_cache().confidence_batch(
        &lineages,
        db.space(),
        Some(db.origins()),
    );
    let partitioners: Vec<Arc<dyn Partitioner>> =
        vec![Arc::new(HashPartitioner), Arc::new(SizeBalancedPartitioner)];
    for partitioner in partitioners {
        for topology in [
            CacheTopology::Shared,
            CacheTopology::PerShard,
            CacheTopology::Disabled,
            CacheTopology::External(Arc::new(dtree_approx::dtree::SubformulaCache::with_capacity(
                1 << 12,
            ))),
        ] {
            let out = ClusterEngine::new(method.clone())
                .with_shards(3)
                .with_partitioner(Arc::clone(&partitioner))
                .with_cache_topology(topology)
                .confidence_batch(&lineages, db.space(), Some(db.origins()));
            for (want, got) in baseline.results.iter().zip(&out.results) {
                assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
                assert_eq!(want.lower.to_bits(), got.lower.to_bits());
                assert_eq!(want.upper.to_bits(), got.upper.to_bits());
            }
        }
    }
}

/// The custom-partitioner extension point: a deliberately terrible policy
/// (everything on shard 0, including out-of-range answers) still computes
/// every item correctly — assignment can only shift work around.
#[test]
fn misbehaving_custom_partitioner_cannot_lose_items() {
    #[derive(Debug)]
    struct Lopsided;
    impl Partitioner for Lopsided {
        fn partition(&self, items: &[RouteItem<'_>], shards: usize) -> Vec<usize> {
            // Half the items get an out-of-range shard on purpose.
            items.iter().map(|it| if it.index % 2 == 0 { 0 } else { shards + 7 }).collect()
        }
        fn name(&self) -> &'static str {
            "lopsided"
        }
    }
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(8, 0.4));
    let lineages = s2_relation(&graph, 8);
    let method = ConfidenceMethod::DTreeExact;
    let single =
        ConfidenceEngine::new(method.clone()).confidence_batch(&lineages, db.space(), None);
    let out = ClusterEngine::new(method)
        .with_shards(3)
        .with_partitioner(Arc::new(Lopsided))
        .confidence_batch(&lineages, db.space(), None);
    assert_eq!(out.results.len(), lineages.len());
    for (want, got) in single.results.iter().zip(&out.results) {
        assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
    }
}
