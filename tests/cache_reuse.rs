//! Cross-batch cache reuse: a long-lived, generation-scoped, size-bounded
//! [`SubformulaCache`] shared across [`ConfidenceEngine`] batches must change
//! the work done, never the answers — warm batches are bit-identical to cold
//! ones, eviction churn and database mutations included. Also pins down the
//! `explore_node` scheduling fix (O(1) pending-child pop) on the fig8
//! random-graph workload, whose s2 lineages produce the wide ⊗/⊙ nodes the
//! old `Vec::remove(0)` was quadratic on.

use std::sync::Arc;
use std::time::Duration;

use dtree_approx::dtree::{exact_probability, CompileOptions, SubformulaCache};
use dtree_approx::pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
use dtree_approx::pdb::ConfidenceEngine;
use dtree_approx::workloads::{random_graph, s2_relation, RandomGraphConfig};

/// The fig8 workload: every s2 lineage of a random graph, evaluated by the
/// depth-first d-tree approximation (which exercises `explore_node`'s wide
/// pending lists), must match the exact d-tree evaluation within ε and keep
/// sound bounds — the pending-child scheduling fix changes work, not results.
#[test]
fn fig8_random_graph_results_are_unchanged_by_scheduling() {
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(10, 0.4));
    let lineages = s2_relation(&graph, 10);
    assert!(!lineages.is_empty());
    let eps = 0.01;
    let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(eps)).with_threads(2);
    let batch = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
    for (lineage, r) in lineages.iter().zip(&batch.results) {
        let exact = exact_probability(
            lineage,
            db.space(),
            &CompileOptions::with_origins(db.origins().clone()),
        )
        .probability;
        assert!(r.converged, "unbudgeted approximation must converge");
        assert!(
            (r.estimate - exact).abs() <= eps + 1e-9,
            "estimate {} vs exact {exact}",
            r.estimate
        );
        assert!(r.lower <= exact + 1e-9 && exact <= r.upper + 1e-9);
    }
}

/// The acceptance contract of the cross-batch cache: results are
/// bit-identical cache-on/cache-off, across repeated batches, and across
/// generations; eviction keeps the cache at or under its entry budget; and a
/// warm repeat of the same batch actually hits.
#[test]
fn cross_batch_cache_is_bit_identical_bounded_and_warm() {
    let (mut db, graph) = random_graph(&RandomGraphConfig::with_range(9, 0.2, 0.8, 7));
    let lineages = s2_relation(&graph, 9);
    assert!(!lineages.is_empty());
    let method = ConfidenceMethod::DTreeAbsolute(0.001);

    let baseline = ConfidenceEngine::new(method.clone()).without_cache().confidence_batch(
        &lineages,
        db.space(),
        Some(db.origins()),
    );

    for capacity in [8, 256, 65_536] {
        let cache = Arc::new(SubformulaCache::with_capacity(capacity));
        let engine = ConfidenceEngine::new(method.clone()).with_shared_cache(Arc::clone(&cache));
        let cold = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
        let warm = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
        assert!(cache.len() <= capacity, "{} entries over budget {capacity}", cache.len());
        // A tiny budget may churn every entry away between batches — the
        // contract there is correctness within bounds, not warmth. A budget
        // comfortably holding the workload must actually serve the repeat.
        if capacity >= 65_536 {
            assert!(warm.cache.hits > 0, "warm batch saw no hits at capacity {capacity}");
        }
        for batch in [&cold, &warm] {
            for (want, got) in baseline.results.iter().zip(&batch.results) {
                assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
                assert_eq!(want.lower.to_bits(), got.lower.to_bits());
                assert_eq!(want.upper.to_bits(), got.upper.to_bits());
                assert_eq!(want.converged, got.converged);
            }
        }
    }

    // Watermark-scoped invalidation: *inserting* a fresh table is append-only
    // growth — the generation survives and the warm entries keep serving the
    // old lineages. An in-place change (here: explicit invalidation) retires
    // them. Either way the answers stay bit-identical — recomputed or warm,
    // never stale.
    let cache = Arc::new(SubformulaCache::with_capacity(65_536));
    let engine = ConfidenceEngine::new(method).with_shared_cache(Arc::clone(&cache));
    let g0 = db.generation();
    let _warmup = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
    db.add_tuple_independent_table(
        "Extra",
        &["x"],
        vec![(vec![dtree_approx::pdb::Value::Int(0)], 0.5)],
    );
    assert_eq!(db.generation(), g0, "inserting a fresh table must keep the generation");
    let after = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
    assert!(after.cache.hits > 0, "insert must keep warm entries serving: {:?}", after.cache);
    assert_eq!(after.cache.stale, 0, "insert must not make entries stale: {:?}", after.cache);
    db.invalidate_caches();
    assert!(db.generation() > g0);
    let cold = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
    assert!(cold.cache.stale > 0, "invalidation must retire warm entries: {:?}", cold.cache);
    for batch in [&after, &cold] {
        for (want, got) in baseline.results.iter().zip(&batch.results) {
            assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
        }
    }
}

/// Monte-Carlo batches under an already-expired shared deadline return
/// promptly with the vacuous-but-sound interval, instead of paying the DKLR
/// setup once per straggler.
#[test]
fn expired_deadline_batch_returns_promptly() {
    let (db, graph) = random_graph(&RandomGraphConfig::uniform(12, 0.4));
    let lineages = s2_relation(&graph, 12);
    let engine = ConfidenceEngine::new(ConfidenceMethod::KarpLuby { epsilon: 0.01, delta: 0.001 })
        .with_budget(ConfidenceBudget { timeout: Some(Duration::ZERO), max_work: None })
        .with_threads(2);
    let t0 = std::time::Instant::now();
    let out = engine.confidence_batch(&lineages, db.space(), None);
    assert!(t0.elapsed() < Duration::from_secs(2), "batch overran: {:?}", t0.elapsed());
    for r in &out.results {
        assert!(!r.converged);
        assert_eq!((r.lower, r.upper), (0.0, 1.0));
    }
}
