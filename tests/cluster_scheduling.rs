//! Scheduler-ordering guarantees of the [`ClusterEngine`] under a shared
//! cluster deadline, on the fig7 hard workload (the #P-hard Boolean TPC-H
//! queries over a scale-factor sweep) and on a synthetic skewed batch.
//!
//! The contract under test:
//!
//! * with a *tight* deadline, hardest-first scheduling converges at least as
//!   many items as naive input order — slicing plus hardness-ordering must
//!   never do worse than the baseline, and uniform degradation means the
//!   cheap tail still converges;
//! * with a *generous* deadline, the cluster's results are bit-identical to
//!   the unsharded engine's (the scheduler machinery must vanish once time
//!   is not scarce);
//! * every non-converged result still carries sound `[lower, upper]`
//!   bounds.

use std::time::{Duration, Instant};

use cluster::{ClusterEngine, SchedulePolicy};
use dtree_approx::events::{Clause, Dnf, ProbabilitySpace};
use dtree_approx::pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
use dtree_approx::pdb::ConfidenceEngine;
use dtree_approx::workloads::tpch::{TpchConfig, TpchDatabase, TpchQuery};
use dtree_approx::workloads::{hardness_mix, HardnessMixConfig};

/// The fig7 batch: lineages of the hard Boolean queries over a scale-factor
/// sweep, pooled over one shared probability space. B9 lineages take tens to
/// hundreds of milliseconds of exact d-tree work; B21/B20 lineages are
/// microseconds — the hardness skew the scheduler exists for.
fn fig7_batch() -> (TpchDatabase, Vec<Dnf>) {
    // One database (one probability space); the sweep is emulated by taking
    // every hard query's lineage at the same scale, which preserves the
    // shape that matters here: a few heavy stragglers among cheap items.
    let db = TpchDatabase::generate(&TpchConfig::new(0.02));
    let mut lineages = Vec::new();
    for q in TpchQuery::hard() {
        let answers = db.answers(&q);
        for a in answers {
            if !a.lineage.is_empty() {
                lineages.push(a.lineage);
            }
        }
    }
    (db, lineages)
}

fn run_policy(
    db: &TpchDatabase,
    lineages: &[Dnf],
    policy: SchedulePolicy,
    timeout: Duration,
) -> cluster::ClusterBatchResult {
    ClusterEngine::new(ConfidenceMethod::DTreeExact)
        .with_shards(2)
        .with_policy(policy)
        .with_budget(ConfidenceBudget { timeout: Some(timeout), max_work: None })
        .confidence_batch(lineages, db.database().space(), Some(db.database().origins()))
}

#[test]
fn hardest_first_converges_at_least_as_many_as_naive_under_tight_deadline() {
    let (db, lineages) = fig7_batch();
    assert!(lineages.len() >= 3, "fig7 hard suite should produce several lineages");
    // Tight: well below what the heavy B9 lineage needs (≥ 40 ms of exact
    // d-tree work at this scale), far above what the light lineages need
    // (microseconds), so the converged set is stable across machines.
    let tight = Duration::from_millis(25);
    let hardest = run_policy(&db, &lineages, SchedulePolicy::HardestFirst, tight);
    let naive = run_policy(&db, &lineages, SchedulePolicy::InputOrder, tight);
    assert!(
        hardest.converged_count() >= naive.converged_count(),
        "hardest-first converged {} < naive {}",
        hardest.converged_count(),
        naive.converged_count()
    );
    // The deadline must actually bite on this workload (otherwise the
    // comparison is vacuous) …
    assert!(!hardest.all_converged(), "the tight deadline should truncate the heavy lineages");
    // … and uniform degradation: the cheap tail still converges.
    assert!(hardest.converged_count() > 0, "slicing must not starve the cheap items");
    // Non-converged items still carry sound bounds.
    for r in &hardest.results {
        assert!(r.lower >= 0.0 && r.upper <= 1.0 && r.lower <= r.upper, "{r:?}");
    }
}

#[test]
fn generous_deadline_is_bit_identical_to_unsharded_engine_on_fig7() {
    let (db, lineages) = fig7_batch();
    let generous = Duration::from_secs(120);
    let single = ConfidenceEngine::new(ConfidenceMethod::DTreeExact)
        .with_budget(ConfidenceBudget { timeout: Some(generous), max_work: None })
        .confidence_batch(&lineages, db.database().space(), Some(db.database().origins()));
    assert!(single.all_converged(), "the generous deadline must not truncate anything");
    for policy in [SchedulePolicy::HardestFirst, SchedulePolicy::InputOrder] {
        let out = run_policy(&db, &lineages, policy, generous);
        assert!(out.all_converged());
        assert_eq!(out.rounds, 1, "nothing to refine when everything converges");
        for (want, got) in single.results.iter().zip(&out.results) {
            assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
            assert_eq!(want.lower.to_bits(), got.lower.to_bits());
            assert_eq!(want.upper.to_bits(), got.upper.to_bits());
        }
    }
}

/// The synthetic skewed batch: the scheduler's slices keep the cheap tail
/// converging even when the batch is dominated by stragglers that want
/// orders of magnitude more time than the whole deadline, in *either*
/// order — the property that makes hardest-first safe to default to.
#[test]
fn slicing_degrades_uniformly_on_skewed_synthetic_batch() {
    let mut cfg = HardnessMixConfig::new(10, 3);
    // Trim the stragglers a little (hundreds of ms each is plenty) to keep
    // the test fast; they remain far beyond the deadline.
    cfg.hard_clauses = 50;
    cfg.hard_vars = 40;
    let (space, lineages) = hardness_mix(&cfg);
    let easy_count = lineages.iter().filter(|l| l.len() <= cfg.easy_clauses).count();
    let tight = Duration::from_millis(20);
    for policy in [SchedulePolicy::HardestFirst, SchedulePolicy::InputOrder] {
        let t0 = Instant::now();
        let out = ClusterEngine::new(ConfidenceMethod::DTreeExact)
            .with_shards(2)
            .with_policy(policy)
            .with_budget(ConfidenceBudget { timeout: Some(tight), max_work: None })
            .confidence_batch(&lineages, &space, None);
        // Every easy item converges under both policies: slices prevent the
        // stragglers from eating the whole deadline first.
        assert!(
            out.converged_count() >= easy_count,
            "{policy:?}: converged {} < easy count {easy_count}",
            out.converged_count()
        );
        // Promptness: the deadline plus one straggler slice, with generous
        // CI slack.
        assert!(t0.elapsed() < Duration::from_secs(10), "{policy:?} overran: {:?}", t0.elapsed());
    }
}

/// The headline scheduling win: under a tight deadline on a skewed batch,
/// the cluster's hardest-first schedule converges strictly more items than
/// the flat engine's naive order, where each item's timeout is the full
/// remaining time. The flat engine's first-encountered straggler eats the
/// entire budget, so every item scheduled after it short-circuits to a
/// vacuous result; the cluster's slices cap stragglers at their fair share
/// and the cheap tail converges.
///
/// The margin is structural, not a timing accident: the stragglers need
/// hundreds of milliseconds each against a 20 ms deadline (they cannot
/// converge under either scheduler, on any plausible CI machine), and the
/// easy items need microseconds against multi-millisecond slices.
#[test]
fn cluster_converges_strictly_more_than_flat_engine_under_tight_deadline() {
    let (space, lineages) = hardness_mix(&HardnessMixConfig::new(12, 4));
    let easy_count = lineages.iter().filter(|l| l.len() <= 3).count();
    assert_eq!(easy_count, 12);
    let budget = ConfidenceBudget { timeout: Some(Duration::from_millis(20)), max_work: None };
    let flat = ConfidenceEngine::new(ConfidenceMethod::DTreeExact)
        .with_threads(2)
        .with_budget(budget.clone())
        .confidence_batch(&lineages, &space, None);
    let flat_converged = flat.results.iter().filter(|r| r.converged).count();
    let sharded = ClusterEngine::new(ConfidenceMethod::DTreeExact)
        .with_shards(2)
        .with_policy(SchedulePolicy::HardestFirst)
        .with_budget(budget)
        .confidence_batch(&lineages, &space, None);
    // The cluster converges the whole cheap tail; the flat engine loses
    // every easy item scheduled after its second straggler (there are at
    // most two workers, and the four stragglers are spread through the
    // input order, so at least the items after position 8 starve).
    assert_eq!(sharded.converged_count(), easy_count);
    assert!(
        sharded.converged_count() > flat_converged,
        "cluster {} should beat the flat engine {} on converged items",
        sharded.converged_count(),
        flat_converged
    );
}

/// Monte-Carlo methods behave under the cluster deadline too: past-deadline
/// items short-circuit to the vacuous non-converged interval instead of
/// paying per-item setup.
#[test]
fn expired_deadline_short_circuits_monte_carlo_batches() {
    let mut space = ProbabilitySpace::new();
    let lineages: Vec<Dnf> = (0..30)
        .map(|k| {
            let vars: Vec<_> = (0..6).map(|i| space.add_bool(format!("m{k}_{i}"), 0.3)).collect();
            Dnf::from_clauses((0..5).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])))
        })
        .collect();
    let t0 = Instant::now();
    let out = ClusterEngine::new(ConfidenceMethod::KarpLuby { epsilon: 0.01, delta: 0.001 })
        .with_shards(3)
        .with_budget(ConfidenceBudget { timeout: Some(Duration::ZERO), max_work: None })
        .confidence_batch(&lineages, &space, None);
    assert!(t0.elapsed() < Duration::from_secs(2), "short-circuit must be prompt");
    for r in &out.results {
        assert!(!r.converged);
        assert_eq!((r.lower, r.upper), (0.0, 1.0));
    }
}
