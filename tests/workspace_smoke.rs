//! Workspace smoke test: the three confidence engines — the d-tree
//! ε-approximation, the naive possible-world sampler, and the Karp-Luby /
//! DKLR `aconf` estimator — must agree with exact enumeration (and hence
//! with each other) within their respective error guarantees on small
//! random DNFs.
//!
//! This is the cross-engine consistency check the CI pipeline leans on: if
//! any one of the three pipelines (deterministic d-tree compilation,
//! additive Monte-Carlo, relative Monte-Carlo) regresses, the engines stop
//! agreeing and this test fails.

use dtree_approx::dtree::{ApproxCompiler, ApproxOptions};
use dtree_approx::events::{Atom, Clause, Dnf, ProbabilitySpace, VarId};
use dtree_approx::montecarlo::{aconf, naive_monte_carlo, McOptions, NaiveOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random instance: a probability space with `nvars` Boolean
/// variables (probabilities bounded away from 0 and 1) and a DNF of
/// `nclauses` clauses over it, with a sprinkling of negative atoms.
fn random_instance(seed: u64) -> (ProbabilitySpace, Dnf) {
    let mut rng = StdRng::seed_from_u64(seed);
    let nvars = rng.gen_range(3..8usize);
    let mut space = ProbabilitySpace::new();
    let vars: Vec<VarId> =
        (0..nvars).map(|i| space.add_bool(format!("x{i}"), rng.gen_range(0.1..0.9))).collect();
    let nclauses = rng.gen_range(2..6usize);
    let clauses = (0..nclauses).map(|_| {
        let width = rng.gen_range(1..4usize);
        Clause::from_atoms((0..width).map(|_| {
            let var = vars[rng.gen_range(0..nvars)];
            if rng.gen_range(0..4u32) == 0 {
                Atom::neg(var)
            } else {
                Atom::pos(var)
            }
        }))
    });
    (space, Dnf::from_clauses(clauses))
}

/// The absolute error the d-tree approximation is asked for.
const DTREE_EPS: f64 = 1e-3;
/// The additive error of the naive sampler (Hoeffding bound, δ = 1e-3).
const NAIVE_EPS: f64 = 0.04;
/// The relative error of `aconf` (DKLR, δ = 1e-3).
const ACONF_EPS: f64 = 0.08;

#[test]
fn three_engines_agree_on_small_random_dnfs() {
    for seed in 0..30u64 {
        let (space, dnf) = random_instance(seed);
        let exact = dnf.exact_probability_enumeration(&space);

        // Engine 1: deterministic d-tree ε-approximation. The guarantee is
        // hard, so the tolerance is exactly ε (plus float slack).
        let dtree = ApproxCompiler::new(ApproxOptions::absolute(DTREE_EPS)).run(&dnf, &space);
        assert!(dtree.converged, "seed {seed}: d-tree compilation did not converge");
        assert!(
            (dtree.estimate - exact).abs() <= DTREE_EPS + 1e-9,
            "seed {seed}: d-tree estimate {} vs exact {exact}",
            dtree.estimate
        );
        assert!(
            dtree.lower <= exact + 1e-9 && exact <= dtree.upper + 1e-9,
            "seed {seed}: exact {exact} outside d-tree bounds [{}, {}]",
            dtree.lower,
            dtree.upper
        );

        // Engine 2: naive possible-world sampling, an additive (ε, δ)
        // guarantee. Fixed seeds keep the run deterministic; the tolerance
        // doubles ε so the 1e-3 failure probability per case cannot flake.
        let naive = naive_monte_carlo(
            &dnf,
            &space,
            &NaiveOptions::new(NAIVE_EPS).with_delta(1e-3).with_seed(seed ^ 0xD7),
        );
        assert!(
            (naive.estimate - exact).abs() <= 2.0 * NAIVE_EPS,
            "seed {seed}: naive estimate {} vs exact {exact}",
            naive.estimate
        );

        // Engine 3: Karp-Luby under the DKLR stopping rule, a relative
        // (ε, δ) guarantee. Same doubling of the tolerance.
        if !dnf.is_empty() {
            let kl = aconf(
                &dnf,
                &space,
                &McOptions::new(ACONF_EPS).with_delta(1e-3).with_seed(seed ^ 0x5EED),
            );
            assert!(kl.converged, "seed {seed}: aconf did not converge");
            assert!(
                (kl.estimate - exact).abs() <= 2.0 * ACONF_EPS * exact.max(f64::MIN_POSITIVE),
                "seed {seed}: aconf estimate {} vs exact {exact}",
                kl.estimate
            );

            // Pairwise agreement follows from the per-engine guarantees;
            // assert it anyway so a systematically biased pair cannot hide
            // behind a loose exact-value check.
            assert!(
                (dtree.estimate - kl.estimate).abs()
                    <= DTREE_EPS + 2.0 * ACONF_EPS * exact.max(f64::MIN_POSITIVE) + 1e-9,
                "seed {seed}: d-tree {} and aconf {} disagree",
                dtree.estimate,
                kl.estimate
            );
        }
        assert!(
            (dtree.estimate - naive.estimate).abs() <= DTREE_EPS + 2.0 * NAIVE_EPS + 1e-9,
            "seed {seed}: d-tree {} and naive {} disagree",
            dtree.estimate,
            naive.estimate
        );
    }
}

#[test]
fn engines_agree_on_example_5_2() {
    // Φ = (x ∧ y) ∨ (x ∧ z) ∨ v with the paper's probabilities; P(Φ) = 0.8456.
    let mut space = ProbabilitySpace::new();
    let x = space.add_bool("x", 0.3);
    let y = space.add_bool("y", 0.2);
    let z = space.add_bool("z", 0.7);
    let v = space.add_bool("v", 0.8);
    let phi = Dnf::from_clauses(vec![
        Clause::from_bools(&[x, y]),
        Clause::from_bools(&[x, z]),
        Clause::from_bools(&[v]),
    ]);

    let exact = phi.exact_probability_enumeration(&space);
    assert!((exact - 0.8456).abs() < 1e-12);

    let dtree = ApproxCompiler::new(ApproxOptions::absolute(1e-4)).run(&phi, &space);
    assert!(dtree.converged && (dtree.estimate - exact).abs() <= 1e-4);

    let naive =
        naive_monte_carlo(&phi, &space, &NaiveOptions::new(0.02).with_delta(1e-4).with_seed(1));
    assert!((naive.estimate - exact).abs() <= 0.04);

    let kl = aconf(&phi, &space, &McOptions::new(0.02).with_delta(1e-4).with_seed(2));
    assert!(kl.converged && (kl.estimate - exact).abs() <= 0.04 * exact);
}
