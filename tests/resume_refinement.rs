//! Property-based integration tests of the resumable anytime refinement:
//! suspending a budgeted d-tree compilation and resuming it later must never
//! yield wider bounds than a one-shot run at the full budget, uninterrupted
//! runs must stay bit-identical to the reference compiler, and resuming past
//! an expired deadline must return promptly.

use std::time::{Duration, Instant};

use dtree_approx::dtree::reference::approx_reference;
use dtree_approx::dtree::{ApproxCompiler, ApproxOptions, ResumeBudget, SubformulaCache};
use dtree_approx::events::{Clause, Dnf, ProbabilitySpace};
use dtree_approx::pdb::confidence::{
    confidence_resumable, confidence_with, ConfidenceBudget, ConfidenceMethod,
};
use proptest::prelude::*;

/// Strategy: a small random probability space plus a random positive DNF over
/// it. Slightly larger than the approximation-guarantee tests so truncation at
/// small step budgets actually leaves open frontiers to resume.
fn small_dnf() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
    let probs = prop::collection::vec(0.05f64..0.95, 3..10);
    probs.prop_flat_map(|ps| {
        let nvars = ps.len();
        let clause = prop::collection::btree_set(0..nvars, 1..=3.min(nvars));
        let clauses = prop::collection::vec(clause, 1..8)
            .prop_map(|cs| cs.into_iter().map(|c| c.into_iter().collect()).collect());
        (Just(ps), clauses)
    })
}

fn build(ps: &[f64], clause_vars: &[Vec<usize>]) -> (ProbabilitySpace, Dnf) {
    let mut space = ProbabilitySpace::new();
    let vars: Vec<_> =
        ps.iter().enumerate().map(|(i, &p)| space.add_bool(format!("v{i}"), p)).collect();
    let clauses: Vec<Clause> = clause_vars
        .iter()
        .map(|c| Clause::from_bools(&c.iter().map(|&i| vars[i]).collect::<Vec<_>>()))
        .collect();
    (space, Dnf::from_clauses(clauses))
}

/// Interval width of a one-shot run at `steps` decomposition steps.
fn one_shot_width(dnf: &Dnf, space: &ProbabilitySpace, eps: f64, steps: usize) -> f64 {
    let opts = ApproxOptions::absolute(eps).with_max_steps(steps);
    let r = ApproxCompiler::new(opts).run(dnf, space);
    r.upper - r.lower
}

/// The five confidence methods the front-end dispatches on.
fn five_methods() -> Vec<ConfidenceMethod> {
    vec![
        ConfidenceMethod::DTreeExact,
        ConfidenceMethod::DTreeAbsolute(1e-4),
        ConfidenceMethod::DTreeRelative(1e-3),
        ConfidenceMethod::KarpLuby { epsilon: 0.1, delta: 0.01 },
        ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.1 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Core anytime property: suspending after `k` steps and resuming with the
    /// remaining `n − k` steps never ends wider than the one-shot run at the
    /// full budget `n` — with and without a shared sub-formula cache.
    #[test]
    fn suspend_resume_never_wider_than_one_shot(
        (ps, cs) in small_dnf(),
        total in 2usize..24,
        split in 1usize..23,
    ) {
        let (space, dnf) = build(&ps, &cs);
        let k = split.min(total - 1);
        let full = one_shot_width(&dnf, &space, 0.0, total);

        for cached in [false, true] {
            let cache = SubformulaCache::new();
            let cache = cached.then_some(&cache);
            let opts = ApproxOptions::absolute(0.0).with_max_steps(k);
            let (_, handle) = ApproxCompiler::new(opts).run_resumable(&dnf, &space, cache);
            // Anytime runs always hand back a frontier — open if truncated,
            // settled if already converged at `k` steps (the resume is then a
            // no-op returning the held bounds).
            let mut h = handle.expect("anytime runs always hand back their frontier");
            let budget = ResumeBudget::steps(total - k);
            let r = match cache {
                Some(c) => h.resume_cached(&space, budget, c),
                None => h.resume(&space, budget),
            };
            let width = r.upper - r.lower;
            prop_assert!(
                width <= full + 1e-12,
                "cached={cached}: resumed width {width} > one-shot width {full}"
            );
        }
    }

    /// Uninterrupted runs through the resumable entry point are bit-identical
    /// to the reference compiler: capturing a frontier must not perturb a
    /// computation that never needed it. The settled frontier they hand back
    /// reports convergence and holds the same bounds.
    #[test]
    fn uninterrupted_runs_match_the_reference_compiler((ps, cs) in small_dnf()) {
        let (space, dnf) = build(&ps, &cs);
        for opts in [ApproxOptions::absolute(1e-3), ApproxOptions::relative(1e-2)] {
            let expected = approx_reference(&dnf, &space, &opts);
            let (got, handle) = ApproxCompiler::new(opts).run_resumable(&dnf, &space, None);
            let handle = handle.expect("anytime runs always hand back their frontier");
            prop_assert!(handle.is_converged(), "uninterrupted run must settle its frontier");
            prop_assert_eq!(handle.bounds().lower.to_bits(), expected.lower.to_bits());
            prop_assert_eq!(handle.bounds().upper.to_bits(), expected.upper.to_bits());
            prop_assert_eq!(got.lower.to_bits(), expected.lower.to_bits());
            prop_assert_eq!(got.upper.to_bits(), expected.upper.to_bits());
            prop_assert_eq!(got.estimate.to_bits(), expected.estimate.to_bits());
            prop_assert!(got.converged && expected.converged);
        }
    }

    /// The front-end property across all five confidence methods: the
    /// budgeted d-tree methods always hand back a resumable handle (open if
    /// truncated, settled if converged), and resuming with the remaining work
    /// never ends wider than one shot at the full budget; the Monte-Carlo
    /// methods have no frontier to persist and stay bit-identical to
    /// `confidence_with`.
    #[test]
    fn all_five_methods_suspend_and_resume_soundly(
        (ps, cs) in small_dnf(),
        seed in 0u64..1000,
    ) {
        let (space, dnf) = build(&ps, &cs);
        let exact = dnf.exact_probability_enumeration(&space);
        let total: u64 = 16;
        let k: u64 = 3;
        let slice = ConfidenceBudget { timeout: None, max_work: Some(k) };
        let full = ConfidenceBudget { timeout: None, max_work: Some(total) };

        for method in five_methods() {
            for cached in [false, true] {
                let cache = SubformulaCache::new();
                let cache = cached.then_some(&cache);
                let (first, handle) =
                    confidence_resumable(&dnf, &space, None, &method, &slice, Some(seed), cache);
                prop_assert!(
                    first.lower <= first.upper + 1e-12,
                    "{}: inverted interval", method.label()
                );
                match handle {
                    Some(mut h) => {
                        prop_assert!(method.is_deterministic());
                        let rest =
                            ConfidenceBudget { timeout: None, max_work: Some(total - k) };
                        let r = h.resume(&space, &rest, cache);
                        let one = confidence_with(
                            &dnf, &space, None, &method, &full, Some(seed), None,
                        );
                        prop_assert!(
                            r.upper - r.lower <= one.upper - one.lower + 1e-12,
                            "{} cached={cached}: resumed [{}, {}] wider than one-shot [{}, {}]",
                            method.label(), r.lower, r.upper, one.lower, one.upper
                        );
                        // Sound bounds throughout for the d-tree methods.
                        prop_assert!(r.lower <= exact + 1e-9 && exact <= r.upper + 1e-9);
                        prop_assert!(!h.failed());
                    }
                    None => {
                        // Only the Monte-Carlo methods have no frontier to
                        // persist; budgeted d-tree runs always hand one back.
                        prop_assert!(
                            !method.is_deterministic(),
                            "{}: budgeted d-tree runs must return a handle", method.label()
                        );
                        let plain = confidence_with(
                            &dnf, &space, None, &method, &slice, Some(seed), cache,
                        );
                        prop_assert_eq!(
                            first.estimate.to_bits(), plain.estimate.to_bits(),
                            "{}: resumable path must match confidence_with", method.label()
                        );
                    }
                }
            }
        }
    }
}

/// Resuming a suspended handle against an already-expired deadline returns
/// promptly with the bounds it held, rather than starting new work.
#[test]
fn expired_deadline_resume_returns_promptly() {
    let mut space = ProbabilitySpace::new();
    let vars: Vec<_> =
        (0..18).map(|i| space.add_bool(format!("v{i}"), 0.15 + 0.03 * f64::from(i % 9))).collect();
    let clauses: Vec<Clause> = vars.windows(2).map(Clause::from_bools).collect();
    let dnf = Dnf::from_clauses(clauses);

    let budget = ConfidenceBudget { timeout: None, max_work: Some(2) };
    let (_, handle) = confidence_resumable(
        &dnf,
        &space,
        None,
        &ConfidenceMethod::DTreeExact,
        &budget,
        None,
        None,
    );
    let mut handle = handle.expect("a 2-step budget must truncate this lineage");
    let before = handle.bounds();

    let expired = Instant::now() - Duration::from_secs(1);
    let started = Instant::now();
    let r = handle.resume_until(&space, expired, None);
    let took = started.elapsed();

    assert!(took < Duration::from_millis(100), "expired resume took {took:?}");
    assert!(!r.converged);
    assert_eq!((r.lower.to_bits(), r.upper.to_bits()), (before.0.to_bits(), before.1.to_bits()));
    assert!(!handle.failed());

    // The handle is still live: an unlimited follow-up slice converges.
    let r = handle.resume(&space, &ConfidenceBudget::default(), None);
    assert!(r.converged);
    assert!((r.estimate - dnf.exact_probability_enumeration(&space)).abs() < 1e-9);
}
