//! Integration tests for the tractability results of Section VI: the d-tree
//! compilation of lineage produced by hierarchical queries, by the
//! functional-S hard pattern of Theorem 6.4, and by IQ queries must stay
//! polynomial — measured here as node counts growing roughly linearly /
//! quadratically with the input, never exponentially.

use dtree_approx::dtree::{exact_probability, CompileOptions};
use dtree_approx::events::Dnf;
use dtree_approx::pdb::{ConjunctiveQuery, Database, IneqOp, Term, Value};
use dtree_approx::workloads::tpch::{TpchConfig, TpchDatabase, TpchQuery};

/// Builds a two-table database realising the hierarchical query
/// q() :- R(X), S(X, Y) with `n` R-tuples and `m` S-tuples per R-tuple.
fn hierarchical_db(n: i64, m: i64) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let r_rows = (0..n).map(|i| (vec![Value::Int(i)], 0.4)).collect();
    db.add_tuple_independent_table("R", &["x"], r_rows);
    let mut s_rows = Vec::new();
    for i in 0..n {
        for j in 0..m {
            s_rows.push((vec![Value::Int(i), Value::Int(j)], 0.6));
        }
    }
    db.add_tuple_independent_table("S", &["x", "y"], s_rows);
    let q = ConjunctiveQuery::new("hier")
        .with_subgoal("R", vec![Term::var("X")])
        .with_subgoal("S", vec![Term::var("X"), Term::var("Y")]);
    (db, q)
}

/// For hierarchical lineage the d-tree (with origin metadata) must be linear
/// in the number of clauses: doubling the data roughly doubles the node
/// count, and the count stays far below the exponential worst case.
#[test]
fn hierarchical_lineage_compiles_to_linear_dtrees() {
    let mut counts = Vec::new();
    for &n in &[5i64, 10, 20, 40] {
        let (db, q) = hierarchical_db(n, 3);
        assert!(q.is_hierarchical());
        let lineage = &q.evaluate(&db)[0].lineage;
        let result = exact_probability(
            lineage,
            db.space(),
            &CompileOptions::with_origins(db.origins().clone()),
        );
        counts.push((lineage.len(), result.stats.inner_nodes()));
    }
    for window in counts.windows(2) {
        let (clauses_a, nodes_a) = window[0];
        let (clauses_b, nodes_b) = window[1];
        assert!(clauses_b > clauses_a);
        // Polynomial (in fact near-linear) growth: allow a generous factor of
        // 4 per doubling, which an exponential tree would blow through.
        assert!(nodes_b <= nodes_a * 4 + 8, "node growth {nodes_a} -> {nodes_b} is super-linear");
    }
    // Absolute sanity: the largest instance stays tiny.
    let (clauses, nodes) = *counts.last().unwrap();
    assert!(nodes <= 6 * clauses + 10, "{nodes} nodes for {clauses} clauses");
}

/// Theorem 6.4: the hard pattern R(X), S(X, Y), T(Y) becomes tractable when
/// the bipartite graph of S is functional (here: S maps each X to exactly one
/// Y). The d-tree must stay linear.
#[test]
fn functional_s_hard_pattern_is_tractable() {
    let mut counts = Vec::new();
    for &n in &[8i64, 16, 32] {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["x"],
            (0..n).map(|i| (vec![Value::Int(i)], 0.3)).collect(),
        );
        // Functional S: each x maps to exactly one y = x mod 4.
        db.add_tuple_independent_table(
            "S",
            &["x", "y"],
            (0..n).map(|i| (vec![Value::Int(i), Value::Int(i % 4)], 0.5)).collect(),
        );
        db.add_tuple_independent_table(
            "T",
            &["y"],
            (0..4).map(|j| (vec![Value::Int(j)], 0.7)).collect(),
        );
        let q = ConjunctiveQuery::new("rst")
            .with_subgoal("R", vec![Term::var("X")])
            .with_subgoal("S", vec![Term::var("X"), Term::var("Y")])
            .with_subgoal("T", vec![Term::var("Y")]);
        assert!(!q.is_hierarchical(), "R-S-T is the canonical non-hierarchical pattern");
        let lineage = &q.evaluate(&db)[0].lineage;
        let enumerated = if lineage.num_vars() <= 20 {
            Some(lineage.exact_probability_enumeration(db.space()))
        } else {
            None
        };
        let result = exact_probability(
            lineage,
            db.space(),
            &CompileOptions::with_origins(db.origins().clone()),
        );
        if let Some(p) = enumerated {
            assert!((result.probability - p).abs() < 1e-9);
        }
        counts.push((lineage.len(), result.stats.inner_nodes()));
    }
    for window in counts.windows(2) {
        let (_, nodes_a) = window[0];
        let (_, nodes_b) = window[1];
        assert!(nodes_b <= nodes_a * 4 + 16, "super-polynomial growth {nodes_a} -> {nodes_b}");
    }
}

/// IQ lineage (inequality join, Lemma 6.8): the d-tree with the IQ
/// elimination order must stay polynomial — the paper proves at most one
/// ⊕-node per literal (Theorem 6.9).
#[test]
fn iq_lineage_stays_polynomial() {
    let mut counts = Vec::new();
    for &n in &[6i64, 12, 24] {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            (0..n).map(|i| (vec![Value::Int(i)], 0.3)).collect(),
        );
        db.add_tuple_independent_table(
            "S",
            &["b"],
            (0..n).map(|j| (vec![Value::Int(j)], 0.6)).collect(),
        );
        // q() :- R(A), S(B), A < B — the prototypical IQ query.
        let q = ConjunctiveQuery::new("iq")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("B")])
            .with_var_predicate("A", IneqOp::Lt, "B");
        assert!(q.is_iq());
        let lineage = &q.evaluate(&db)[0].lineage;
        let result = exact_probability(
            lineage,
            db.space(),
            &CompileOptions::with_origins(db.origins().clone()),
        );
        if lineage.num_vars() <= 20 {
            let p = lineage.exact_probability_enumeration(db.space());
            assert!((result.probability - p).abs() < 1e-9);
        }
        counts.push((lineage.num_vars(), result.stats.inner_nodes()));
    }
    // Node count must grow polynomially with the number of literals — allow a
    // quadratic envelope, which still rejects exponential growth.
    for &(vars, nodes) in &counts {
        assert!(nodes <= vars * vars + 4 * vars + 8, "{nodes} nodes for {vars} variables");
    }
}

/// The TPC-H tractable queries (the Figure-6 set) all produce lineage whose
/// exact d-tree evaluation stays small — the end-to-end version of
/// Section VI-B.
#[test]
fn tpch_tractable_queries_have_small_dtrees() {
    let db = TpchDatabase::generate(&TpchConfig::new(0.02));
    for query in TpchQuery::tractable() {
        for answer in db.answers(&query) {
            let result = exact_probability(
                &answer.lineage,
                db.database().space(),
                &CompileOptions::with_origins(db.database().origins().clone()),
            );
            let clauses = answer.lineage.len().max(1);
            assert!(
                result.stats.inner_nodes() <= 8 * clauses + 16,
                "query {}: {} nodes for {} clauses",
                query.name(),
                result.stats.inner_nodes(),
                clauses
            );
        }
    }
}

/// Read-once (1OF) formulas compile into d-trees with only ⊗ / ⊙ inner nodes
/// (Proposition 6.3): no Shannon expansion is required.
#[test]
fn read_once_lineage_needs_no_shannon_expansion() {
    let mut db = Database::new();
    db.add_tuple_independent_table(
        "R",
        &["x"],
        (0..6).map(|i| (vec![Value::Int(i)], 0.2 + 0.1 * (i % 5) as f64)).collect(),
    );
    db.add_tuple_independent_table(
        "S",
        &["x", "y"],
        (0..6)
            .flat_map(|i| (0..2).map(move |j| (vec![Value::Int(i), Value::Int(j)], 0.5)))
            .collect(),
    );
    let q = ConjunctiveQuery::new("hier")
        .with_subgoal("R", vec![Term::var("X")])
        .with_subgoal("S", vec![Term::var("X"), Term::var("Y")]);
    let lineage: Dnf = q.evaluate(&db)[0].lineage.clone();
    let result = exact_probability(
        &lineage,
        db.space(),
        &CompileOptions::with_origins(db.origins().clone()),
    );
    assert_eq!(result.stats.xor_nodes, 0, "hierarchical lineage must avoid Shannon expansion");
    let enumerated = lineage.exact_probability_enumeration(db.space());
    assert!((result.probability - enumerated).abs() < 1e-9);
}
