//! A minimal, offline, API-compatible stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the `proptest` dev-dependency pinned in the workspace manifest resolves to
//! this shim. It implements the surface the workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::prop_flat_map`], implemented for integer and float ranges,
//!   tuples of strategies, and [`Just`],
//! * [`collection::vec`] and [`collection::btree_set`] with flexible size
//!   specifications, [`sample::select`], and [`bool::ANY`],
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`) and
//!   the [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] family.
//!
//! Unlike the real proptest there is **no shrinking**: a failing case panics
//! with the generating seed and case number so it can be replayed by fixing
//! `PROPTEST_FORCE_SEED`. Cases are generated from a seed derived from the
//! test name, so runs are deterministic.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use crate::strategy::{Just, Strategy};

/// Re-export of the generator the strategies draw from.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;

    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of rejected (`prop_assume!`) cases tolerated
        /// before the test errors out.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Self::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should not count.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejection variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type the generated test-case closures return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Builds the generator for one test case.
    pub fn rng_for_seed(seed: u64) -> TestRng {
        <TestRng as rand::SeedableRng>::seed_from_u64(seed)
    }

    /// Derives a deterministic base seed for a named test, honouring the
    /// `PROPTEST_FORCE_SEED` environment variable for replay.
    pub fn base_seed(test_name: &str) -> u64 {
        if let Ok(forced) = std::env::var("PROPTEST_FORCE_SEED") {
            if let Ok(seed) = forced.parse::<u64>() {
                return seed;
            }
        }
        // FNV-1a over the fully qualified test name.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::{Rng, SampleUniform};

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// The shim's strategies generate directly from a [`TestRng`]; there is
    /// no shrink tree.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_strategy_for_tuple {
        ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_strategy_for_tuple!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );
}

/// Strategies over `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0..2u32) == 1
        }
    }
}

/// Strategies building collections from an element strategy.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;
    use std::collections::BTreeSet;

    /// An inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy yielding a `Vec` of values from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy yielding a `BTreeSet` of values from `element`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // The element space may be smaller than the target size, so give
            // up after a bounded number of duplicate draws, as long as the
            // minimum size has been reached.
            let mut misses = 0usize;
            while set.len() < target && (set.len() < self.size.min || misses < 16 * target + 64) {
                if !set.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            set
        }
    }

    /// A `BTreeSet` with a size drawn from `size`.
    ///
    /// If the element strategy cannot produce enough distinct values the set
    /// may come out smaller than requested, matching the real proptest's
    /// behaviour of giving up on a saturated universe.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

/// Strategies drawing from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding a uniformly selected element of a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }

    /// Uniformly selects one of `items` per case.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }
}

/// The usual single-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias of this crate so `prop::collection::vec(..)` etc. resolve.
    pub use crate as prop;
}

/// Fails the current test case if the condition does not hold.
///
/// Inside a [`proptest!`]-generated test this returns a
/// [`test_runner::TestCaseError::Fail`] rather than panicking, so the macro
/// can attach the case's seed to the report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

/// Rejects the current test case (it is regenerated, not failed) if the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn sum_commutes(a in 0..100u32, b in 0..100u32) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; expands one test function at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::base_seed(concat!(module_path!(), "::", stringify!($name)));
            let combined = ($($strategy,)+);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case_index: u64 = 0;
            while accepted < config.cases {
                let case_seed = seed.wrapping_add(case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                case_index += 1;
                let mut rng = $crate::test_runner::rng_for_seed(case_seed);
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&combined, &mut rng);
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest: too many rejected cases ({rejected}); last: {why}"
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(why)) => {
                        panic!(
                            "proptest case failed (case #{case_index}, replay with \
                             PROPTEST_FORCE_SEED={case_seed}): {why}"
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0..10usize, 0.0f64..1.0)) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn vec_and_flat_map(v in (1..5usize).prop_flat_map(|n| prop::collection::vec(0..100u32, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn btree_set_sizes(s in prop::collection::btree_set(0..3usize, 1..=2usize)) {
            prop_assert!(!s.is_empty() && s.len() <= 2);
        }

        #[test]
        fn select_and_just((x, j) in (prop::sample::select(vec![1, 2, 3]), Just(7))) {
            prop_assert!((1..=3).contains(&x));
            prop_assert_eq!(j, 7);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0..100u32) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
