//! A minimal, offline, API-compatible stand-in for the [`criterion`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the `criterion` dev-dependency pinned in the workspace manifest resolves
//! to this shim. It implements the surface the `bench` crate's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::measurement_time`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId::new`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain warm-up + timed-iterations loop reporting the mean
//! and min/max wall-clock time per iteration — no outlier analysis, HTML
//! reports, or statistical machinery. Timings print to stdout in a
//! `group/function/value  time: [..]` layout close enough to criterion's for
//! eyeballing and grepping.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a computed value.
///
/// Uses a volatile-free best-effort approach (`std::hint::black_box`), which
/// on current rustc is a true optimisation barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handed to the closure of [`BenchmarkGroup::bench_with_input`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording one sample per invocation, until either
    /// `sample_size` samples have been collected or the measurement budget
    /// is exhausted (always at least one sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches the first sample would otherwise pay
        // for).
        black_box(routine());
        let budget_start = Instant::now();
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        routine(&mut bencher, input);
        let samples = &bencher.samples_ns;
        if samples.is_empty() {
            println!("{}/{id}  (no samples recorded)", self.name);
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{}/{id}  time: [{} {} {}]  ({} samples)",
            self.name,
            format_ns(min),
            format_ns(mean),
            format_ns(max),
            samples.len(),
        );
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Finishes the group. (Reporting happens per-benchmark; this exists for
    /// API compatibility.)
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Applies command-line configuration.
    ///
    /// The shim accepts and ignores the arguments cargo-bench passes
    /// (`--bench`, filters, etc.), so `cargo bench` drives these binaries the
    /// same way it drives real criterion harnesses.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            criterion: self,
        }
    }

    /// Prints the run summary. Called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("criterion-shim: {} benchmark(s) measured", self.benchmarks_run);
    }
}

/// Bundles benchmark functions into a single runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Generates the `main` function for a bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(10);
        group.measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_records() {
        benches();
    }

    #[test]
    fn id_renders_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("dtree_exact", "q1").to_string(), "dtree_exact/q1");
    }
}
