//! A minimal, offline, API-compatible stand-in for the [`rand`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the `rand` dependency pinned in the workspace manifest resolves to this
//! shim. It implements exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit generator (xoshiro256++,
//!   seeded via SplitMix64),
//! * [`SeedableRng::seed_from_u64`] and [`SeedableRng::from_entropy`],
//! * [`Rng::gen_range`] over half-open and inclusive integer and float
//!   ranges.
//!
//! The generator is *not* cryptographically secure; it is a statistical
//! PRNG suitable for Monte-Carlo estimation and reproducible workload
//! generation, which is all the workspace asks of it.
//!
//! [`rand`]: https://crates.io/crates/rand

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, automatically implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Generates a random value uniformly distributed in `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (stretched via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;

    /// Creates a generator from environmental entropy (the system clock and
    /// an address-space probe — this shim has no OS entropy source).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let probe = Box::new(0u8);
        let addr = core::ptr::from_ref(&*probe) as u64;
        Self::seed_from_u64(t ^ addr.rotate_left(32))
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    ///
    /// Deterministic for a given seed, 256 bits of state, passes the usual
    /// statistical batteries. Not cryptographically secure (the real
    /// `rand::rngs::StdRng` is ChaCha12; nothing in this workspace relies on
    /// that).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)` (`inclusive == false`) or
    /// `[low, high]` (`inclusive == true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Two's-complement wrapping in u128 gives the correct span for
                // every 8..64-bit integer type, signed or unsigned.
                let span = (high as u128)
                    .wrapping_sub(low as u128)
                    .wrapping_add(if inclusive { 1 } else { 0 })
                    & (u64::MAX as u128);
                if span == 0 {
                    // Either a singleton half-open range or the full 2^64-wide
                    // inclusive range; in the latter case every draw is valid.
                    if inclusive {
                        return low.wrapping_add(rng.next_u64() as $ty);
                    }
                    return low;
                }
                if span == 1 {
                    return low;
                }
                let span = span as u64;
                // Debiased modulo via rejection: accept draws below the
                // largest multiple of `span`.
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low.wrapping_add((v % span) as $ty);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        if low == high {
            return low;
        }
        // 53 uniform mantissa bits: [0, 1) for half-open ranges, [0, 1] for
        // inclusive ones.
        let bits = (rng.next_u64() >> 11) as f64;
        let unit =
            if inclusive { bits / ((1u64 << 53) - 1) as f64 } else { bits / (1u64 << 53) as f64 };
        let v = low + (high - low) * unit;
        // `low + (high-low)*unit` can round onto (or, inclusive, past) `high`;
        // clamp sign-correctly instead of bit-twiddling.
        if inclusive {
            v.min(high)
        } else if v >= high {
            high.next_down().max(low)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        if low == high {
            return low;
        }
        let bits = (rng.next_u32() >> 8) as f32;
        let unit =
            if inclusive { bits / ((1u32 << 24) - 1) as f32 } else { bits / (1u32 << 24) as f32 };
        let v = low + (high - low) * unit;
        if inclusive {
            v.min(high)
        } else if v >= high {
            high.next_down().max(low)
        } else {
            v
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn int_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0..=5i64);
            assert!((0..=5).contains(&w));
        }
    }

    #[test]
    fn float_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.05..0.95);
            assert!((0.05..0.95).contains(&v));
        }
    }

    #[test]
    fn float_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn singleton_ranges() {
        let mut rng = StdRng::seed_from_u64(17);
        assert_eq!(rng.gen_range(4..5usize), 4);
        assert_eq!(rng.gen_range(4..=4usize), 4);
        assert_eq!(rng.gen_range(0.5..=0.5f64), 0.5);
    }

    #[test]
    fn inclusive_float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&v), "v={v}");
        }
    }

    #[test]
    fn negative_float_ranges() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..0.0f64);
            assert!((-1.0..0.0).contains(&v), "v={v}");
            let w = rng.gen_range(-2.0..=-1.0f64);
            assert!((-2.0..=-1.0).contains(&w), "w={w}");
            let x: f32 = rng.gen_range(-1.0..0.0f32);
            assert!((-1.0..0.0).contains(&x), "x={x}");
        }
    }
}
