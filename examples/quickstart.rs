//! Quickstart: compiling a DNF into a d-tree and computing exact and
//! approximate probabilities.
//!
//! This example walks through the running examples of the paper:
//!
//! * the DNF of Figure 2 and its complete d-tree,
//! * Example 5.2 / 5.9: the bucket bounds of the `Independent` heuristic and
//!   absolute ε-approximations,
//! * the incremental ε-approximation compiler,
//! * the batched [`ConfidenceEngine`]: all answer tuples of a query in one
//!   call, with a shared sub-formula cache.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;

use dtree_approx::cluster::ClusterEngine;
use dtree_approx::dtree::{
    compile, dnf_bounds_sorted, exact_probability, ApproxCompiler, ApproxOptions, CompileOptions,
    SubformulaCache,
};
use dtree_approx::events::{Atom, Clause, Dnf, ProbabilitySpace};
use dtree_approx::pdb::confidence::ConfidenceMethod;
use dtree_approx::pdb::{ConfidenceEngine, ConjunctiveQuery, Database, Term, Value};

fn main() {
    figure_2_dtree();
    example_5_2_bounds();
    incremental_approximation();
    batched_engine();
    sharded_cluster();
}

/// The DNF of Figure 2:
/// Φ = {{x=1}, {x=2, y=1}, {x=2, z=1}, {u=1, v=1}, {u=2}} over multi-valued
/// variables, compiled to a complete d-tree.
fn figure_2_dtree() {
    println!("=== Figure 2: compiling a DNF into a complete d-tree ===");
    let mut space = ProbabilitySpace::new();
    // x and u have three domain values {0, 1, 2}; y, z, v are Boolean-like
    // with domain {0, 1}.
    let x = space.add_discrete("x", vec![0.2, 0.3, 0.5]);
    let y = space.add_discrete("y", vec![0.6, 0.4]);
    let z = space.add_discrete("z", vec![0.3, 0.7]);
    let u = space.add_discrete("u", vec![0.1, 0.45, 0.45]);
    let v = space.add_discrete("v", vec![0.5, 0.5]);

    let phi = Dnf::from_clauses(vec![
        Clause::from_atoms([Atom::new(x, 1)]),
        Clause::from_atoms([Atom::new(x, 2), Atom::new(y, 1)]),
        Clause::from_atoms([Atom::new(x, 2), Atom::new(z, 1)]),
        Clause::from_atoms([Atom::new(u, 1), Atom::new(v, 1)]),
        Clause::from_atoms([Atom::new(u, 2)]),
    ]);

    let tree = compile(&phi, &space, &CompileOptions::default());
    println!("d-tree ({} nodes, height {}):", tree.num_nodes(), tree.height());
    println!("{tree}");
    let p_tree = tree.exact_probability(&space).expect("complete d-tree");
    let p_enum = phi.exact_probability_enumeration(&space);
    println!("probability from the d-tree : {p_tree:.6}");
    println!("probability by enumeration  : {p_enum:.6}");
    println!();
}

/// Example 5.2: bucket-based lower and upper bounds for
/// Φ = (x ∧ y) ∨ (x ∧ z) ∨ v with P(x)=0.3, P(y)=0.2, P(z)=0.7, P(v)=0.8.
fn example_5_2_bounds() {
    println!("=== Example 5.2 / 5.9: bucket bounds and ε-approximations ===");
    let mut space = ProbabilitySpace::new();
    let x = space.add_bool("x", 0.3);
    let y = space.add_bool("y", 0.2);
    let z = space.add_bool("z", 0.7);
    let v = space.add_bool("v", 0.8);
    let phi = Dnf::from_clauses(vec![
        Clause::from_bools(&[x, y]),
        Clause::from_bools(&[x, z]),
        Clause::from_bools(&[v]),
    ]);

    let exact = phi.exact_probability_enumeration(&space);
    let fig3 = dnf_bounds_sorted(&phi, &space, true);
    let improved = dtree_approx::dtree::dnf_bounds(&phi, &space);
    println!("exact probability            : {exact:.4}");
    println!(
        "Figure-3 bucket bounds       : [{:.4}, {:.4}]  (lower bound matches the paper's 0.842)",
        fig3.lower, fig3.upper
    );
    println!("with monotone-DNF upper cap  : [{:.4}, {:.4}]", improved.lower, improved.upper);

    // With these bounds, 0.845 is an absolute 0.003-approximation
    // (Example 5.9).
    let approx = ApproxCompiler::new(ApproxOptions::absolute(0.003)).run(&phi, &space);
    println!(
        "absolute 0.003-approximation: {:.4} (converged: {}, |error| = {:.5})",
        approx.estimate,
        approx.converged,
        (approx.estimate - exact).abs()
    );
    println!();
}

/// Runs the incremental compiler on a slightly larger random-looking DNF and
/// shows how few decomposition steps are needed for a coarse vs a tight
/// approximation.
fn incremental_approximation() {
    println!("=== Incremental ε-approximation ===");
    let mut space = ProbabilitySpace::new();
    let vars: Vec<_> =
        (0..30).map(|i| space.add_bool(format!("t{i}"), 0.05 + 0.03 * (i as f64 % 10.0))).collect();
    // A join-like DNF: clauses pair a "fact" variable with a shared
    // "dimension" variable, like lineage of a two-way join.
    let clauses: Vec<Clause> =
        (0..25).map(|i| Clause::from_bools(&[vars[i % 10], vars[10 + (i % 20)]])).collect();
    let phi = Dnf::from_clauses(clauses);
    let exact = exact_probability(&phi, &space, &CompileOptions::default()).probability;

    for eps in [0.05, 0.01, 0.001] {
        let r = ApproxCompiler::new(ApproxOptions::absolute(eps)).run(&phi, &space);
        println!(
            "ε = {eps:<6} estimate = {:.6}  exact = {exact:.6}  steps = {:<4} nodes = {:<4} converged = {}",
            r.estimate,
            r.steps,
            r.stats.inner_nodes(),
            r.converged
        );
        assert!((r.estimate - exact).abs() <= eps + 1e-12);
    }
    println!();
}

/// The batched engine: evaluate a whole query result — one lineage per
/// answer tuple — in a single call with a shared sub-formula cache.
fn batched_engine() {
    println!("=== Batched ConfidenceEngine ===");
    let mut db = Database::new();
    db.add_tuple_independent_table(
        "R",
        &["a"],
        (0..5).map(|i| (vec![Value::Int(i)], 0.15 + 0.1 * i as f64)).collect(),
    );
    db.add_tuple_independent_table(
        "S",
        &["a", "b"],
        (0..5)
            .flat_map(|a| (0..4).map(move |b| (vec![Value::Int(a), Value::Int(b)], 0.4)))
            .collect(),
    );
    // One answer tuple per B-value; the lineages overlap in the R-variables.
    let q = ConjunctiveQuery::new("q")
        .with_head(&["B"])
        .with_subgoal("R", vec![Term::var("A")])
        .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
    let answers = q.evaluate(&db);
    let lineages: Vec<&Dnf> = answers.iter().map(|a| &a.lineage).collect();

    let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(0.001));
    let batch = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
    for (answer, r) in answers.iter().zip(&batch.results) {
        println!(
            "  answer {:?}: confidence = {:.6} (converged: {})",
            answer.head, r.estimate, r.converged
        );
        assert!(r.converged);
    }
    // No timings printed here: quickstart output stays deterministic so two
    // runs diff clean.
    println!(
        "batch of {} lineages, all converged: {}, shared cache: {} entries",
        batch.results.len(),
        batch.all_converged(),
        batch.cache.entries
    );

    // Cross-batch reuse: production traffic repeats queries, so attach a
    // long-lived cache (Arc-shared, generation-scoped, size-bounded) and run
    // the same batch twice — the second batch is served warm. This doubles
    // as the CI smoke check for the shared-cache path.
    // Single-threaded so the printed hit rates stay deterministic (parallel
    // workers race benignly on who computes a shared sub-formula first).
    let cache = Arc::new(SubformulaCache::with_capacity(1 << 16));
    let shared_engine = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(0.001))
        .with_shared_cache(Arc::clone(&cache))
        .with_threads(1);
    let first = shared_engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
    let second = shared_engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
    assert!(
        second.cache.hits > 0 && second.cache.hit_rate() > first.cache.hit_rate(),
        "repeated batch must be served from the shared cache: cold {:?} vs warm {:?}",
        first.cache,
        second.cache
    );
    for (a, b) in batch.results.iter().zip(&second.results) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "warm results must be identical");
    }
    println!(
        "repeated batch: warm hit rate {:.0}% (cold {:.0}%), identical results",
        100.0 * second.cache.hit_rate(),
        100.0 * first.cache.hit_rate()
    );
}

/// Scaling out: the same whole-query batch through the sharded
/// [`ClusterEngine`] — hardness-scored, partitioned across shard engines,
/// scheduled hardest-first against one cluster-wide deadline — with results
/// bit-identical to the single engine. This doubles as the CI smoke check
/// for the sharded path.
fn sharded_cluster() {
    println!("=== Sharded ClusterEngine ===");
    let mut db = Database::new();
    db.add_tuple_independent_table(
        "R",
        &["a"],
        (0..6).map(|i| (vec![Value::Int(i)], 0.1 + 0.1 * i as f64)).collect(),
    );
    db.add_tuple_independent_table(
        "S",
        &["a", "b"],
        (0..6)
            .flat_map(|a| (0..4).map(move |b| (vec![Value::Int(a), Value::Int(b)], 0.35)))
            .collect(),
    );
    let q = ConjunctiveQuery::new("q")
        .with_head(&["B"])
        .with_subgoal("R", vec![Term::var("A")])
        .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
    let answers = q.evaluate(&db);
    let lineages: Vec<&Dnf> = answers.iter().map(|a| &a.lineage).collect();

    let single = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(0.001)).confidence_batch(
        &lineages,
        db.space(),
        Some(db.origins()),
    );
    let cluster = ClusterEngine::new(ConfidenceMethod::DTreeAbsolute(0.001))
        .with_shards(3)
        .confidence_batch(&lineages, db.space(), Some(db.origins()));
    assert!(cluster.all_converged());
    for (a, b) in single.results.iter().zip(&cluster.results) {
        assert_eq!(
            a.estimate.to_bits(),
            b.estimate.to_bits(),
            "sharding must never change answers"
        );
    }
    // Deterministic output only: shard loads and steal counts vary with
    // machine parallelism, so print the invariants, not the timings.
    let assigned: usize = cluster.shards.iter().map(|s| s.assigned).sum();
    println!(
        "cluster of {} shards over {} answers ({} scheduled after dedup): \
         bit-identical to the single engine, all converged",
        cluster.shards.len(),
        cluster.results.len(),
        assigned,
    );
}
