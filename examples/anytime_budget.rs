//! Anytime use of the incremental d-tree compiler.
//!
//! The paper's introduction notes that, being incremental, the algorithm "is
//! also useful under a given time budget": you can stop the compilation at
//! any point and read off sound lower and upper bounds for the probability.
//! This example runs the d-tree approximation on a #P-hard TPC-H lineage
//! under increasing step budgets and shows how the bounds tighten — and how
//! the guaranteed error shrinks — as more decomposition steps are allowed.
//!
//! Run with `cargo run --release --example anytime_budget`.

use dtree_approx::dtree::{ApproxCompiler, ApproxOptions, CompileOptions, ErrorBound};
use dtree_approx::workloads::tpch::{TpchConfig, TpchDatabase, TpchQuery};

fn main() {
    let db = TpchDatabase::generate(&TpchConfig::new(0.05));
    let lineage = db.boolean_lineage(&TpchQuery::B9);
    println!(
        "hard query B9 at SF 0.05: {} clauses over {} variables",
        lineage.len(),
        lineage.num_vars()
    );
    println!();
    println!(
        "{:>10}  {:>10}  {:>10}  {:>10}  {:>12}  {:>10}",
        "steps", "lower", "upper", "width", "time (s)", "converged"
    );

    for budget in [10usize, 100, 1_000, 10_000, 50_000] {
        let opts = ApproxOptions {
            error: ErrorBound::Relative(0.01),
            compile: CompileOptions::with_origins(db.database().origins().clone()),
            strategy: Default::default(),
            max_steps: Some(budget),
            timeout: None,
        };
        let r = ApproxCompiler::new(opts).run(&lineage, db.database().space());
        println!(
            "{:>10}  {:>10.4}  {:>10.4}  {:>10.4}  {:>12.3}  {:>10}",
            budget,
            r.lower,
            r.upper,
            r.upper - r.lower,
            r.elapsed.as_secs_f64(),
            r.converged
        );
    }

    println!();
    println!("The interval [lower, upper] is sound at every budget (Proposition 5.4);");
    println!("the algorithm reports convergence once the interval satisfies the");
    println!("ε-condition of Proposition 5.8. On instances in the hard region a tight");
    println!("relative guarantee may require a large budget — but a useful estimate");
    println!("with certified bounds is available after a handful of steps.");
}
