//! Confidence computation for answers of relational queries on a
//! tuple-independent TPC-H-style probabilistic database (Section VII-A).
//!
//! The example generates a small database, then:
//!
//! 1. runs a tractable (hierarchical) query and shows that the SPROUT exact
//!    operator, the d-tree exact evaluation, and the d-tree ε-approximation
//!    agree;
//! 2. runs a #P-hard query (B9) and compares the d-tree approximation with
//!    the Karp-Luby `aconf` baseline;
//! 3. runs an IQ (inequality-join) query, the class made tractable by the
//!    variable-elimination order of Lemma 6.8.
//!
//! Run with `cargo run --release --example tpch_confidence`.

use std::time::Duration;

use dtree_approx::pdb::confidence::{confidence, ConfidenceBudget, ConfidenceMethod};
use dtree_approx::pdb::{sprout, ConfidenceEngine};
use dtree_approx::workloads::tpch::{TpchConfig, TpchDatabase, TpchQuery};

fn main() {
    let config = TpchConfig::new(0.05);
    let db = TpchDatabase::generate(&config);
    println!(
        "generated tuple-independent TPC-H database at SF {}: {} tuples, {} random variables",
        config.scale_factor,
        db.database().total_tuples(),
        db.database().space().num_vars()
    );
    println!();

    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(30)), max_work: None };

    // ------------------------------------------------------------------ 1.
    println!("=== Tractable query B17 (lineitem ⋈ part, Boolean) ===");
    let q = TpchQuery::B17;
    let lineage = db.boolean_lineage(&q);
    println!("lineage: {} clauses over {} variables", lineage.len(), lineage.num_vars());
    let sprout_p = sprout::boolean_confidence(&q.query(), db.database())
        .expect("B17 is hierarchical without self-joins");
    println!("SPROUT exact           : {sprout_p:.6}");
    for method in [ConfidenceMethod::DTreeExact, ConfidenceMethod::DTreeRelative(0.01)] {
        let r = confidence(
            &lineage,
            db.database().space(),
            Some(db.database().origins()),
            &method,
            &budget,
        );
        println!("{:<22} : {:.6}  ({:.4}s)", r.method, r.estimate, r.elapsed.as_secs_f64());
    }
    println!();

    // ------------------------------------------------------------------ 2.
    println!("=== Hard query B9 (6-way join, #P-hard) ===");
    let q = TpchQuery::B9;
    let lineage = db.boolean_lineage(&q);
    println!("lineage: {} clauses over {} variables", lineage.len(), lineage.num_vars());
    for method in [
        ConfidenceMethod::DTreeRelative(0.01),
        ConfidenceMethod::DTreeRelative(0.05),
        ConfidenceMethod::KarpLuby { epsilon: 0.05, delta: 1e-4 },
    ] {
        let r = confidence(
            &lineage,
            db.database().space(),
            Some(db.database().origins()),
            &method,
            &budget,
        );
        println!(
            "{:<22} : {:.6}  bounds [{:.6}, {:.6}]  ({:.4}s, converged: {})",
            r.method,
            r.estimate,
            r.lower,
            r.upper,
            r.elapsed.as_secs_f64(),
            r.converged
        );
    }
    println!();

    // ------------------------------------------------------------------ 3.
    println!("=== IQ query IQ 6 (inequality join, grouped by quantity) ===");
    println!("computing ALL answer confidences in one batched engine call");
    let q = TpchQuery::Iq6;
    let answers = db.answers(&q);
    println!("{} answer tuples", answers.len());
    let lineages: Vec<&dtree_approx::events::Dnf> = answers.iter().map(|a| &a.lineage).collect();
    let engine =
        ConfidenceEngine::new(ConfidenceMethod::DTreeRelative(0.01)).with_budget(budget.clone());
    let batch =
        engine.confidence_batch(&lineages, db.database().space(), Some(db.database().origins()));
    for (answer, r) in answers.iter().zip(&batch.results).take(5) {
        println!(
            "  qty = {:>3}   {} clauses   confidence ≈ {:.6}   ({:.4}s)",
            answer.head[0],
            answer.lineage.len(),
            r.estimate,
            r.elapsed.as_secs_f64()
        );
    }
    if answers.len() > 5 {
        println!("  … and {} more answers", answers.len() - 5);
    }
    println!(
        "batch: {:.4}s wall for {} answers ({:.4}s summed compute), cache {} hits / {} misses",
        batch.wall.as_secs_f64(),
        batch.results.len(),
        batch.total_compute().as_secs_f64(),
        batch.cache.hits,
        batch.cache.misses
    );
}
