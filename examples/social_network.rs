//! The social-network scenario of Section VI-A (Figure 5) and Section VII-B
//! (Figure 9): motif queries on probabilistic friendship graphs.
//!
//! The example first reproduces the six-edge network of Figure 5 and the
//! triangle query of Section VI-A, then runs the four motif queries of the
//! evaluation (t, p2, p3, s2) on Zachary's karate club, comparing the d-tree
//! approximation against the Karp-Luby `aconf` baseline.
//!
//! Run with `cargo run --release --example social_network`.

use std::time::Duration;

use dtree_approx::pdb::confidence::{confidence, ConfidenceBudget, ConfidenceMethod};
use dtree_approx::pdb::motif::ProbGraph;
use dtree_approx::pdb::{ConfidenceEngine, Database, Value};
use dtree_approx::workloads::{karate_club, SocialNetworkConfig};

fn main() {
    figure_5_network();
    figure_5_bid_network();
    karate_motifs();
}

/// The network of Figure 5: six possible friendship edges over the nodes
/// {5, 6, 7, 11, 17} with the probabilities given in the paper.
fn figure_5_network() {
    println!("=== Figure 5: a small probabilistic social network ===");
    let mut db = Database::new();
    db.add_tuple_independent_table(
        "E",
        &["u", "v"],
        vec![
            (vec![Value::Int(5), Value::Int(7)], 0.9),
            (vec![Value::Int(5), Value::Int(11)], 0.8),
            (vec![Value::Int(6), Value::Int(7)], 0.1),
            (vec![Value::Int(6), Value::Int(11)], 0.9),
            (vec![Value::Int(6), Value::Int(17)], 0.5),
            (vec![Value::Int(7), Value::Int(17)], 0.2),
        ],
    );
    let graph = ProbGraph::from_edge_relation(&db.table("E").unwrap());

    // "The probability that there is a triangle (a 3-clique of friends) in
    // this graph" — Figure 5 (c): the only triangle is 6-7-17.
    let triangle = graph.triangle_lineage();
    let p = confidence(
        &triangle,
        db.space(),
        Some(db.origins()),
        &ConfidenceMethod::DTreeExact,
        &ConfidenceBudget::default(),
    );
    println!(
        "triangle lineage: {} clause(s) over {} variables",
        triangle.len(),
        triangle.num_vars()
    );
    println!("P(triangle)     = {:.4}  (e3 ∧ e5 ∧ e6 = 0.1 · 0.5 · 0.2 = 0.01)", p.estimate);

    // Nodes within two, but not one, degrees of separation from node 17.
    for node in [5, 11] {
        let s2 = graph.separation2_lineage(node, 17);
        let p = confidence(
            &s2,
            db.space(),
            Some(db.origins()),
            &ConfidenceMethod::DTreeExact,
            &ConfidenceBudget::default(),
        );
        println!("P(separation ≤ 2 between {node} and 17) = {:.4}", p.estimate);
    }
    println!();
}

/// The same network in its block-independent-disjoint representation
/// (Figure 5 (b)), which also stores the "edge absent" alternative of every
/// edge, and the query of Figure 5 (d): nodes within two, but not one,
/// degrees of separation from node 7.
fn figure_5_bid_network() {
    println!("=== Figure 5 (b)/(d): BID representation and edge-absence queries ===");
    let mut db = Database::new();
    let edges: [((i64, i64), f64); 6] = [
        ((5, 7), 0.9),
        ((5, 11), 0.8),
        ((6, 7), 0.1),
        ((6, 11), 0.9),
        ((6, 17), 0.5),
        ((7, 17), 0.2),
    ];
    let blocks = edges
        .iter()
        .map(|&((u, v), p)| {
            vec![
                (vec![Value::Int(u), Value::Int(v), Value::Int(1)], p),
                (vec![Value::Int(u), Value::Int(v), Value::Int(0)], 1.0 - p),
            ]
        })
        .collect();
    db.add_bid_table("E", &["u", "v", "present"], blocks);
    let graph = ProbGraph::from_bid_edge_relation(&db.table("E").unwrap());

    println!("nodes within two, but not one, degrees of separation from node 7:");
    // All answer tuples in one batched engine call: the lineages overlap in
    // their edge variables, so the shared cache pays off even here.
    let answers = graph.within2_not1_answers(7);
    let lineages: Vec<&dtree_approx::events::Dnf> = answers.iter().map(|(_, l)| l).collect();
    let batch = ConfidenceEngine::new(ConfidenceMethod::DTreeExact).confidence_batch(
        &lineages,
        db.space(),
        Some(db.origins()),
    );
    for ((node, lineage), r) in answers.iter().zip(&batch.results) {
        println!("  node {node:>2}: {} clause(s), confidence = {:.4}", lineage.len(), r.estimate);
    }
    println!();
}

/// The Figure-9 workload on Zachary's karate club.
fn karate_motifs() {
    println!("=== Zachary's karate club: motif queries (Figure 9) ===");
    let net = karate_club(&SocialNetworkConfig::karate_default());
    println!("network: {} nodes, {} probabilistic edges", net.num_nodes, net.graph.num_edges());
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(20)), max_work: None };
    let (s, t) = net.separation_pair();

    let queries: Vec<(&str, dtree_approx::events::Dnf)> = vec![
        ("triangle (t)", net.graph.triangle_lineage()),
        ("path of length 2 (p2)", net.graph.path2_lineage()),
        ("path of length 3 (p3)", net.graph.path3_lineage()),
        ("two degrees of separation (s2)", net.graph.separation2_lineage(s, t)),
    ];

    // The four motif lineages share the network's edge variables, so they
    // are evaluated as one batch per method: shared deadline, shared cache,
    // parallel across lineages.
    let lineages: Vec<&dtree_approx::events::Dnf> = queries.iter().map(|(_, l)| l).collect();
    for method in [
        ConfidenceMethod::DTreeRelative(0.01),
        ConfidenceMethod::KarpLuby { epsilon: 0.01, delta: 1e-4 },
    ] {
        let engine = ConfidenceEngine::new(method).with_budget(budget.clone());
        let batch = engine.confidence_batch(&lineages, net.db.space(), Some(net.db.origins()));
        for ((name, lineage), r) in queries.iter().zip(&batch.results) {
            println!(
                "-- {name} ({} clauses, {} vars): {:<18} estimate = {:.6}   time = {:>8.4}s   converged = {}",
                lineage.len(),
                lineage.num_vars(),
                r.method,
                r.estimate,
                r.elapsed.as_secs_f64(),
                r.converged
            );
        }
        println!(
            "   batch wall = {:.4}s, cache hit rate = {:.0}%",
            batch.wall.as_secs_f64(),
            100.0 * batch.cache.hit_rate()
        );
    }
}
