//! Random-graph motifs and the easy-hard-easy pattern (Section VII-B,
//! Figure 8).
//!
//! The example sweeps the edge probability of a probabilistic clique and
//! reports, for the triangle and path-of-length-2 queries, the probability,
//! the number of d-tree decomposition steps, and the time to reach a relative
//! 0.01-approximation. Low and high edge probabilities are easy (the result
//! probability is near 0 or near 1 and bounds converge quickly); the hard
//! instances sit in between — the "easy-hard-easy" pattern the paper
//! discusses in its experiment design.
//!
//! Run with `cargo run --release --example random_graph_motifs`.

use std::time::Duration;

use dtree_approx::pdb::confidence::{confidence, ConfidenceBudget, ConfidenceMethod};
use dtree_approx::workloads::{random_graph, RandomGraphConfig};

fn main() {
    let nodes = 15;
    let budget = ConfidenceBudget { timeout: Some(Duration::from_secs(20)), max_work: None };
    println!("probabilistic {nodes}-clique: {} possible edges", nodes * (nodes - 1) / 2);
    println!();
    println!(
        "{:>10}  {:>10}  {:>12}  {:>10}  {:>12}  {:>10}",
        "edge prob", "P(triangle)", "time (s)", "P(path2)", "time (s)", ""
    );

    for p in [0.01, 0.05, 0.1, 0.3, 0.5, 0.7, 0.9] {
        let (db, graph) = random_graph(&RandomGraphConfig::uniform(nodes, p));
        let mut cells: Vec<String> = vec![format!("{p:>10.2}")];
        for lineage in [graph.triangle_lineage(), graph.path2_lineage()] {
            let r = confidence(
                &lineage,
                db.space(),
                Some(db.origins()),
                &ConfidenceMethod::DTreeRelative(0.01),
                &budget,
            );
            cells.push(format!("{:>10.6}", r.estimate));
            cells.push(format!("{:>12.4}", r.elapsed.as_secs_f64()));
        }
        println!("{}", cells.join("  "));
    }

    println!();
    println!("Note how the instances with intermediate edge probabilities take the longest:");
    println!("very sparse graphs have tiny motif probabilities and very dense graphs have");
    println!("probabilities close to 1 — in both cases the d-tree bounds converge after a");
    println!("handful of decomposition steps (the easy-hard-easy pattern).");
}
